(** Dynamic-trace instructions.

    A lifeguard observes a per-thread sequence of application events
    (Section 2 of the paper).  This module defines the event vocabulary:
    data movement between memory locations (registers are modelled as
    thread-private locations), heap management, taint sources and sinks,
    and neutral work.

    Instructions carry only the information lifeguards consume — operand
    {e addresses} — never computed values: AddrCheck cares about which
    locations are touched, allocated and freed; TaintCheck cares about which
    locations flow into which. *)

type t =
  | Assign_const of Addr.t
      (** [x := k] — writes location [x] with a constant; defines [x],
          clears taint. *)
  | Assign_unop of Addr.t * Addr.t
      (** [x := op a] — reads [a], writes [x]; [x] inherits [a]'s taint. *)
  | Assign_binop of Addr.t * Addr.t * Addr.t
      (** [x := a op b] — reads [a] and [b], writes [x]; [x] inherits the OR
          of the sources' taint. *)
  | Read of Addr.t
      (** A bare load whose value is consumed without being stored (e.g. a
          compare); an access for AddrCheck, a no-op for TaintCheck. *)
  | Malloc of { base : Addr.t; size : int }
      (** Allocation of [size] bytes at [base..base+size-1]. *)
  | Free of { base : Addr.t; size : int }
      (** Deallocation of the region allocated at [base]. *)
  | Taint_source of Addr.t
      (** A system call writes untrusted data (network, untrusted file) into
          the location; TAINTCHECK marks it tainted. *)
  | Untaint of Addr.t
      (** The program validates/overwrites the location with trusted data. *)
  | Jump_via of Addr.t
      (** Indirect control transfer through the value stored at the
          location: a TAINTCHECK sink. *)
  | Syscall_arg of Addr.t
      (** The location is passed to a critical system call (e.g. a format
          string): a TAINTCHECK sink. *)
  | Lock of Addr.t
      (** Acquire the mutex identified by the location.  A synchronization
          event for RACECHECK; no data access (lock words live outside the
          monitored data space), so a no-op for the other lifeguards. *)
  | Unlock of Addr.t  (** Release the mutex identified by the location. *)
  | Fork of Tid.t
      (** Spawn (or release) thread [u]: everything [u] executes in later
          epochs happens after this point.  Self- and out-of-range targets
          are recorded but carry no ordering. *)
  | Join of Tid.t
      (** Wait for thread [u]: everything [u] executed in earlier epochs
          happens before this point.  Self- and out-of-range targets are
          recorded but carry no ordering. *)
  | Nop  (** Computation that touches no monitored memory. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val reads : t -> Addr.t list
(** Locations whose values the instruction consumes (single bytes; [Malloc]
    and [Free] read nothing). *)

val writes : t -> Addr.t option
(** The single location the instruction defines, if any.  [Malloc]/[Free]
    return [None]: they change allocation metadata, not location values
    (use {!alloc_effect}). *)

val accesses : t -> Addr.t list
(** All locations read or written — the events AddrCheck checks.  Excludes
    the regions managed by [Malloc]/[Free] themselves. *)

val alloc_effect : t -> [ `Alloc of Addr.t * int | `Free of Addr.t * int | `None ]
(** Heap-management effect, if any. *)

val is_memory_event : t -> bool
(** [true] iff the instruction generates at least one load or store the
    monitoring hardware would log (i.e. {!accesses} is non-empty or the
    instruction manages the heap). *)

val taint_sink : t -> Addr.t option
(** The location whose taint status must be checked at this instruction
    ([Jump_via], [Syscall_arg]). *)

val sync_effect :
  t ->
  [ `Lock of Addr.t | `Unlock of Addr.t | `Fork of Tid.t | `Join of Tid.t
  | `None ]
(** Thread-synchronization effect, if any — the events RACECHECK builds its
    happens-before order from.  Synchronization instructions read and write
    no monitored data ({!reads}, {!writes} and {!accesses} are empty), so
    the data-centric lifeguards are unaffected by their presence. *)
