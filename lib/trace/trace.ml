type t = Event.t array

let of_events evs = Array.of_list evs
let of_instrs is = Array.of_list (List.map (fun i -> Event.Instr i) is)
let events t = t

let instrs t =
  Array.to_list t
  |> List.filter_map (function Event.Instr i -> Some i | Event.Heartbeat -> None)

let length = Array.length
let instr_count t = List.length (instrs t)

let memory_event_count t =
  List.fold_left
    (fun n i -> if Instr.is_memory_event i then n + 1 else n)
    0 (instrs t)

let with_heartbeats ~every t =
  if every <= 0 then invalid_arg "Trace.with_heartbeats: every must be > 0";
  let is = instrs t in
  let buf = ref [] in
  let count = ref 0 in
  let emit e = buf := e :: !buf in
  List.iter
    (fun i ->
      emit (Event.Instr i);
      incr count;
      if !count mod every = 0 then emit Event.Heartbeat)
    is;
  Array.of_list (List.rev !buf)

let blocks t =
  let acc = ref [] in
  let cur = ref [] in
  Array.iter
    (fun e ->
      match e with
      | Event.Instr i -> cur := i :: !cur
      | Event.Heartbeat ->
        acc := Array.of_list (List.rev !cur) :: !acc;
        cur := [])
    t;
  acc := Array.of_list (List.rev !cur) :: !acc;
  List.rev !acc

let of_blocks bs =
  let buf = ref [] in
  List.iteri
    (fun k b ->
      if k > 0 then buf := Event.Heartbeat :: !buf;
      Array.iter (fun i -> buf := Event.Instr i :: !buf) b)
    bs;
  Array.of_list (List.rev !buf)

let append = Array.append

let pp ppf t =
  Array.iteri (fun k e -> Format.fprintf ppf "%4d %a@." k Event.pp e) t
