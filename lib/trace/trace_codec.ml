let encode_event buf tid e =
  let addf fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s) fmt in
  let a = Addr.to_string in
  (match e with
  | Event.Heartbeat -> addf "%d heartbeat" tid
  | Event.Instr i -> (
    match i with
    | Instr.Assign_const x -> addf "%d assign %s" tid (a x)
    | Instr.Assign_unop (x, s) -> addf "%d unop %s %s" tid (a x) (a s)
    | Instr.Assign_binop (x, s1, s2) ->
      addf "%d binop %s %s %s" tid (a x) (a s1) (a s2)
    | Instr.Read s -> addf "%d read %s" tid (a s)
    | Instr.Malloc { base; size } -> addf "%d malloc %s %d" tid (a base) size
    | Instr.Free { base; size } -> addf "%d free %s %d" tid (a base) size
    | Instr.Taint_source x -> addf "%d taint %s" tid (a x)
    | Instr.Untaint x -> addf "%d untaint %s" tid (a x)
    | Instr.Jump_via x -> addf "%d jump %s" tid (a x)
    | Instr.Syscall_arg x -> addf "%d sysarg %s" tid (a x)
    | Instr.Nop -> addf "%d nop" tid));
  Buffer.add_char buf '\n'

let encode p =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "threads %d\n" (Program.threads p));
  for t = 0 to Program.threads p - 1 do
    Array.iter (encode_event buf t) (Trace.events (Program.trace p t))
  done;
  Buffer.contents buf

let encode_to_channel oc p = output_string oc (encode p)

let parse_line lineno line =
  let fail fmt =
    Printf.ksprintf (fun m -> Error (Printf.sprintf "line %d: %s" lineno m)) fmt
  in
  let words =
    String.split_on_char ' ' line |> List.filter (fun w -> w <> "")
  in
  match words with
  | [] -> Ok None
  | [ "threads"; n ] -> (
    match int_of_string_opt n with
    | Some n when n > 0 -> Ok (Some (n - 1, `Declare))
    | _ -> fail "bad thread count %S" n)
  | tid_s :: rest -> (
    match int_of_string_opt tid_s with
    | None -> fail "bad thread id %S" tid_s
    | Some tid when tid < 0 -> fail "negative thread id"
    | Some tid -> (
      let addr w =
        match Addr.of_string w with
        | Some x -> Ok x
        | None -> Error (Printf.sprintf "line %d: bad address %S" lineno w)
      in
      let int w =
        match int_of_string_opt w with
        | Some x -> Ok x
        | None -> Error (Printf.sprintf "line %d: bad integer %S" lineno w)
      in
      let ( let* ) = Result.bind in
      let instr i = Ok (Some (tid, `Event (Event.Instr i))) in
      match rest with
      | [ "heartbeat" ] -> Ok (Some (tid, `Event Event.Heartbeat))
      | [ "nop" ] -> instr Instr.Nop
      | [ "assign"; x ] ->
        let* x = addr x in
        instr (Instr.Assign_const x)
      | [ "unop"; x; s ] ->
        let* x = addr x in
        let* s = addr s in
        instr (Instr.Assign_unop (x, s))
      | [ "binop"; x; s1; s2 ] ->
        let* x = addr x in
        let* s1 = addr s1 in
        let* s2 = addr s2 in
        instr (Instr.Assign_binop (x, s1, s2))
      | [ "read"; s ] ->
        let* s = addr s in
        instr (Instr.Read s)
      | [ "malloc"; b; sz ] ->
        let* b = addr b in
        let* sz = int sz in
        instr (Instr.Malloc { base = b; size = sz })
      | [ "free"; b; sz ] ->
        let* b = addr b in
        let* sz = int sz in
        instr (Instr.Free { base = b; size = sz })
      | [ "taint"; x ] ->
        let* x = addr x in
        instr (Instr.Taint_source x)
      | [ "untaint"; x ] ->
        let* x = addr x in
        instr (Instr.Untaint x)
      | [ "jump"; x ] ->
        let* x = addr x in
        instr (Instr.Jump_via x)
      | [ "sysarg"; x ] ->
        let* x = addr x in
        instr (Instr.Syscall_arg x)
      | mnemonic :: _ -> fail "unknown mnemonic %S" mnemonic
      | [] -> fail "missing mnemonic"))

let decode s =
  let lines = String.split_on_char '\n' s in
  let table : (int, Event.t list ref) Hashtbl.t = Hashtbl.create 8 in
  let max_tid = ref (-1) in
  let rec go lineno = function
    | [] -> Ok ()
    | line :: rest ->
      let line = String.trim line in
      if line = "" || String.length line > 0 && line.[0] = '#' then
        go (lineno + 1) rest
      else (
        match parse_line lineno line with
        | Error _ as e -> e
        | Ok None -> go (lineno + 1) rest
        | Ok (Some (tid, `Declare)) ->
          max_tid := max !max_tid tid;
          go (lineno + 1) rest
        | Ok (Some (tid, `Event ev)) ->
          max_tid := max !max_tid tid;
          let cell =
            match Hashtbl.find_opt table tid with
            | Some c -> c
            | None ->
              let c = ref [] in
              Hashtbl.add table tid c;
              c
          in
          cell := ev :: !cell;
          go (lineno + 1) rest)
  in
  match go 1 lines with
  | Error m -> Error m
  | Ok () ->
    if !max_tid < 0 then Error "empty trace: no events"
    else
      let ts =
        List.init (!max_tid + 1) (fun t ->
            match Hashtbl.find_opt table t with
            | None -> Trace.of_events []
            | Some c -> Trace.of_events (List.rev !c))
      in
      Ok (Program.make ts)

let decode_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | s -> decode s
  | exception Sys_error m -> Error m

let roundtrip_exn p =
  match decode (encode p) with
  | Ok p' -> p'
  | Error m -> failwith ("Trace_codec.roundtrip_exn: " ^ m)

(* ------------------------------------------------------------------ *)
(* Binary format.

   Current layout (format version 2) is a {!Binio} envelope: magic
   "BFLY", one version byte, the payload (varint thread count, then per
   thread a varint event count followed by events), and a CRC32 trailer.
   The legacy version-1 layout — the literal prefix "BFLY1" with the
   same payload and no checksum — is still decoded for old trace files,
   but never emitted. *)

let binary_magic = "BFLY"
let binary_version = 2
let legacy_magic = "BFLY1"

let instr_opcode = function
  | Instr.Nop -> 1
  | Instr.Assign_const _ -> 2
  | Instr.Assign_unop _ -> 3
  | Instr.Assign_binop _ -> 4
  | Instr.Read _ -> 5
  | Instr.Malloc _ -> 6
  | Instr.Free _ -> 7
  | Instr.Taint_source _ -> 8
  | Instr.Untaint _ -> 9
  | Instr.Jump_via _ -> 10
  | Instr.Syscall_arg _ -> 11

let put_instr w i =
  Binio.W.u8 w (instr_opcode i);
  match i with
  | Instr.Nop -> ()
  | Instr.Assign_const x | Instr.Read x | Instr.Taint_source x
  | Instr.Untaint x | Instr.Jump_via x | Instr.Syscall_arg x ->
    Binio.W.varint w x
  | Instr.Assign_unop (x, a) ->
    Binio.W.varint w x;
    Binio.W.varint w a
  | Instr.Assign_binop (x, a, b) ->
    Binio.W.varint w x;
    Binio.W.varint w a;
    Binio.W.varint w b
  | Instr.Malloc { base; size } | Instr.Free { base; size } ->
    Binio.W.varint w base;
    Binio.W.varint w size

let put_event w = function
  | Event.Heartbeat -> Binio.W.u8 w 0
  | Event.Instr i -> put_instr w i

let instr_of_opcode r op =
  let varint () = Binio.R.varint r in
  match op with
  | 1 -> Instr.Nop
  | 2 -> Instr.Assign_const (varint ())
  | 3 ->
    let x = varint () in
    Instr.Assign_unop (x, varint ())
  | 4 ->
    let x = varint () in
    let a = varint () in
    Instr.Assign_binop (x, a, varint ())
  | 5 -> Instr.Read (varint ())
  | 6 ->
    let base = varint () in
    Instr.Malloc { base; size = varint () }
  | 7 ->
    let base = varint () in
    Instr.Free { base; size = varint () }
  | 8 -> Instr.Taint_source (varint ())
  | 9 -> Instr.Untaint (varint ())
  | 10 -> Instr.Jump_via (varint ())
  | 11 -> Instr.Syscall_arg (varint ())
  | op -> raise (Binio.R.Corrupt (Printf.sprintf "unknown opcode %d" op))

let read_instr r =
  match Binio.R.u8 r with
  | 0 -> raise (Binio.R.Corrupt "heartbeat opcode where an instruction was expected")
  | op -> instr_of_opcode r op

let read_event r =
  match Binio.R.u8 r with
  | 0 -> Event.Heartbeat
  | op -> Event.Instr (instr_of_opcode r op)

let put_payload w p =
  Binio.W.varint w (Program.threads p);
  for t = 0 to Program.threads p - 1 do
    let events = Trace.events (Program.trace p t) in
    Binio.W.array w put_event events
  done

let encode_binary p =
  let w = Binio.W.create () in
  put_payload w p;
  Binio.frame ~magic:binary_magic ~version:binary_version (Binio.W.contents w)

let read_payload r =
  let threads = Binio.R.varint r in
  if threads <= 0 || threads > 4096 then
    raise (Binio.R.Corrupt "bad thread count");
  let ts =
    List.init threads (fun _ ->
        let n = Binio.R.varint r in
        if n > 100_000_000 then raise (Binio.R.Corrupt "bad event count");
        Trace.of_events (List.init n (fun _ -> read_event r)))
  in
  Binio.R.expect_end r;
  Program.make ts

let decode_binary s =
  let mlen = String.length legacy_magic in
  if String.length s >= mlen && String.sub s 0 mlen = legacy_magic then
    (* Legacy unchecksummed traces: payload starts right after "BFLY1". *)
    match
      read_payload
        (Binio.R.of_string (String.sub s mlen (String.length s - mlen)))
    with
    | p -> Ok p
    | exception Binio.R.Corrupt m -> Error m
  else
    match Binio.unframe ~magic:binary_magic ~version:binary_version s with
    | Error _ as e -> e
    | Ok payload -> (
      match read_payload (Binio.R.of_string payload) with
      | p -> Ok p
      | exception Binio.R.Corrupt m -> Error m)

let binary_roundtrip_exn p =
  match decode_binary (encode_binary p) with
  | Ok p2 -> p2
  | Error m -> failwith ("Trace_codec.binary_roundtrip_exn: " ^ m)
