let encode_event buf tid e =
  let addf fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s) fmt in
  let a = Addr.to_string in
  (match e with
  | Event.Heartbeat -> addf "%d heartbeat" tid
  | Event.Instr i -> (
    match i with
    | Instr.Assign_const x -> addf "%d assign %s" tid (a x)
    | Instr.Assign_unop (x, s) -> addf "%d unop %s %s" tid (a x) (a s)
    | Instr.Assign_binop (x, s1, s2) ->
      addf "%d binop %s %s %s" tid (a x) (a s1) (a s2)
    | Instr.Read s -> addf "%d read %s" tid (a s)
    | Instr.Malloc { base; size } -> addf "%d malloc %s %d" tid (a base) size
    | Instr.Free { base; size } -> addf "%d free %s %d" tid (a base) size
    | Instr.Taint_source x -> addf "%d taint %s" tid (a x)
    | Instr.Untaint x -> addf "%d untaint %s" tid (a x)
    | Instr.Jump_via x -> addf "%d jump %s" tid (a x)
    | Instr.Syscall_arg x -> addf "%d sysarg %s" tid (a x)
    | Instr.Lock m -> addf "%d lock %s" tid (a m)
    | Instr.Unlock m -> addf "%d unlock %s" tid (a m)
    | Instr.Fork u -> addf "%d fork %d" tid u
    | Instr.Join u -> addf "%d join %d" tid u
    | Instr.Nop -> addf "%d nop" tid));
  Buffer.add_char buf '\n'

let encode p =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "threads %d\n" (Program.threads p));
  for t = 0 to Program.threads p - 1 do
    Array.iter (encode_event buf t) (Trace.events (Program.trace p t))
  done;
  Buffer.contents buf

let encode_to_channel oc p = output_string oc (encode p)

let parse_line lineno line =
  let fail fmt =
    Printf.ksprintf (fun m -> Error (Printf.sprintf "line %d: %s" lineno m)) fmt
  in
  let words =
    String.split_on_char ' ' line |> List.filter (fun w -> w <> "")
  in
  match words with
  | [] -> Ok None
  | [ "threads"; n ] -> (
    match int_of_string_opt n with
    | Some n when n > 0 -> Ok (Some (n - 1, `Declare))
    | _ -> fail "bad thread count %S" n)
  | tid_s :: rest -> (
    match int_of_string_opt tid_s with
    | None -> fail "bad thread id %S" tid_s
    | Some tid when tid < 0 -> fail "negative thread id"
    | Some tid -> (
      let addr w =
        match Addr.of_string w with
        | Some x -> Ok x
        | None -> Error (Printf.sprintf "line %d: bad address %S" lineno w)
      in
      let int w =
        match int_of_string_opt w with
        | Some x -> Ok x
        | None -> Error (Printf.sprintf "line %d: bad integer %S" lineno w)
      in
      let ( let* ) = Result.bind in
      let instr i = Ok (Some (tid, `Event (Event.Instr i))) in
      match rest with
      | [ "heartbeat" ] -> Ok (Some (tid, `Event Event.Heartbeat))
      | [ "nop" ] -> instr Instr.Nop
      | [ "assign"; x ] ->
        let* x = addr x in
        instr (Instr.Assign_const x)
      | [ "unop"; x; s ] ->
        let* x = addr x in
        let* s = addr s in
        instr (Instr.Assign_unop (x, s))
      | [ "binop"; x; s1; s2 ] ->
        let* x = addr x in
        let* s1 = addr s1 in
        let* s2 = addr s2 in
        instr (Instr.Assign_binop (x, s1, s2))
      | [ "read"; s ] ->
        let* s = addr s in
        instr (Instr.Read s)
      | [ "malloc"; b; sz ] ->
        let* b = addr b in
        let* sz = int sz in
        instr (Instr.Malloc { base = b; size = sz })
      | [ "free"; b; sz ] ->
        let* b = addr b in
        let* sz = int sz in
        instr (Instr.Free { base = b; size = sz })
      | [ "taint"; x ] ->
        let* x = addr x in
        instr (Instr.Taint_source x)
      | [ "untaint"; x ] ->
        let* x = addr x in
        instr (Instr.Untaint x)
      | [ "jump"; x ] ->
        let* x = addr x in
        instr (Instr.Jump_via x)
      | [ "sysarg"; x ] ->
        let* x = addr x in
        instr (Instr.Syscall_arg x)
      | [ "lock"; m ] ->
        let* m = addr m in
        instr (Instr.Lock m)
      | [ "unlock"; m ] ->
        let* m = addr m in
        instr (Instr.Unlock m)
      | [ "fork"; u ] ->
        let* u = int u in
        if u < 0 then fail "negative fork target" else instr (Instr.Fork u)
      | [ "join"; u ] ->
        let* u = int u in
        if u < 0 then fail "negative join target" else instr (Instr.Join u)
      | mnemonic :: _ -> fail "unknown mnemonic %S" mnemonic
      | [] -> fail "missing mnemonic"))

let decode s =
  let lines = String.split_on_char '\n' s in
  let table : (int, Event.t list ref) Hashtbl.t = Hashtbl.create 8 in
  let max_tid = ref (-1) in
  let rec go lineno = function
    | [] -> Ok ()
    | line :: rest ->
      let line = String.trim line in
      if line = "" || String.length line > 0 && line.[0] = '#' then
        go (lineno + 1) rest
      else (
        match parse_line lineno line with
        | Error _ as e -> e
        | Ok None -> go (lineno + 1) rest
        | Ok (Some (tid, `Declare)) ->
          max_tid := max !max_tid tid;
          go (lineno + 1) rest
        | Ok (Some (tid, `Event ev)) ->
          max_tid := max !max_tid tid;
          let cell =
            match Hashtbl.find_opt table tid with
            | Some c -> c
            | None ->
              let c = ref [] in
              Hashtbl.add table tid c;
              c
          in
          cell := ev :: !cell;
          go (lineno + 1) rest)
  in
  match go 1 lines with
  | Error m -> Error m
  | Ok () ->
    if !max_tid < 0 then Error "empty trace: no events"
    else
      let ts =
        List.init (!max_tid + 1) (fun t ->
            match Hashtbl.find_opt table t with
            | None -> Trace.of_events []
            | Some c -> Trace.of_events (List.rev !c))
      in
      Ok (Program.make ts)

let decode_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | s -> decode s
  | exception Sys_error m -> Error m

let roundtrip_exn p =
  match decode (encode p) with
  | Ok p' -> p'
  | Error m -> failwith ("Trace_codec.roundtrip_exn: " ^ m)

(* ------------------------------------------------------------------ *)
(* Binary format.

   Current layout (format version 2) is a {!Binio} envelope: magic
   "BFLY", one version byte, the payload (varint thread count, then per
   thread a varint event count followed by events), and a CRC32 trailer.
   The legacy version-1 layout — the literal prefix "BFLY1" with the
   same payload and no checksum — is still decoded for old trace files,
   but never emitted. *)

let binary_magic = "BFLY"
let binary_version = 2
let legacy_magic = "BFLY1"

let instr_opcode = function
  | Instr.Nop -> 1
  | Instr.Assign_const _ -> 2
  | Instr.Assign_unop _ -> 3
  | Instr.Assign_binop _ -> 4
  | Instr.Read _ -> 5
  | Instr.Malloc _ -> 6
  | Instr.Free _ -> 7
  | Instr.Taint_source _ -> 8
  | Instr.Untaint _ -> 9
  | Instr.Jump_via _ -> 10
  | Instr.Syscall_arg _ -> 11
  (* Opcodes 12-15 are new in format version 2; legacy BFLY1 traces never
     contain them, so the legacy decode path is unaffected. *)
  | Instr.Lock _ -> 12
  | Instr.Unlock _ -> 13
  | Instr.Fork _ -> 14
  | Instr.Join _ -> 15

let put_instr w i =
  Binio.W.u8 w (instr_opcode i);
  match i with
  | Instr.Nop -> ()
  | Instr.Assign_const x | Instr.Read x | Instr.Taint_source x
  | Instr.Untaint x | Instr.Jump_via x | Instr.Syscall_arg x | Instr.Lock x
  | Instr.Unlock x | Instr.Fork x | Instr.Join x ->
    Binio.W.varint w x
  | Instr.Assign_unop (x, a) ->
    Binio.W.varint w x;
    Binio.W.varint w a
  | Instr.Assign_binop (x, a, b) ->
    Binio.W.varint w x;
    Binio.W.varint w a;
    Binio.W.varint w b
  | Instr.Malloc { base; size } | Instr.Free { base; size } ->
    Binio.W.varint w base;
    Binio.W.varint w size

let put_event w = function
  | Event.Heartbeat -> Binio.W.u8 w 0
  | Event.Instr i -> put_instr w i

let instr_of_opcode r op =
  let varint () = Binio.R.varint r in
  match op with
  | 1 -> Instr.Nop
  | 2 -> Instr.Assign_const (varint ())
  | 3 ->
    let x = varint () in
    Instr.Assign_unop (x, varint ())
  | 4 ->
    let x = varint () in
    let a = varint () in
    Instr.Assign_binop (x, a, varint ())
  | 5 -> Instr.Read (varint ())
  | 6 ->
    let base = varint () in
    Instr.Malloc { base; size = varint () }
  | 7 ->
    let base = varint () in
    Instr.Free { base; size = varint () }
  | 8 -> Instr.Taint_source (varint ())
  | 9 -> Instr.Untaint (varint ())
  | 10 -> Instr.Jump_via (varint ())
  | 11 -> Instr.Syscall_arg (varint ())
  | 12 -> Instr.Lock (varint ())
  | 13 -> Instr.Unlock (varint ())
  | 14 -> Instr.Fork (varint ())
  | 15 -> Instr.Join (varint ())
  | op -> raise (Binio.R.Corrupt (Printf.sprintf "unknown opcode %d" op))

let read_instr r =
  match Binio.R.u8 r with
  | 0 -> raise (Binio.R.Corrupt "heartbeat opcode where an instruction was expected")
  | op -> instr_of_opcode r op

let read_event r =
  match Binio.R.u8 r with
  | 0 -> Event.Heartbeat
  | op -> Event.Instr (instr_of_opcode r op)

let put_payload w p =
  Binio.W.varint w (Program.threads p);
  for t = 0 to Program.threads p - 1 do
    let events = Trace.events (Program.trace p t) in
    Binio.W.array w put_event events
  done

let encode_binary p =
  let w = Binio.W.create () in
  put_payload w p;
  Binio.frame ~magic:binary_magic ~version:binary_version (Binio.W.contents w)

let read_payload r =
  let threads = Binio.R.varint r in
  if threads <= 0 || threads > 4096 then
    raise (Binio.R.Corrupt "bad thread count");
  let ts =
    List.init threads (fun _ ->
        let n = Binio.R.varint r in
        if n > 100_000_000 then raise (Binio.R.Corrupt "bad event count");
        Trace.of_events (List.init n (fun _ -> read_event r)))
  in
  Binio.R.expect_end r;
  Program.make ts

let decode_binary s =
  let mlen = String.length legacy_magic in
  if String.length s >= mlen && String.sub s 0 mlen = legacy_magic then
    (* Legacy unchecksummed traces: payload starts right after "BFLY1". *)
    match
      read_payload
        (Binio.R.of_string (String.sub s mlen (String.length s - mlen)))
    with
    | p -> Ok p
    | exception Binio.R.Corrupt m -> Error m
  else
    match Binio.unframe ~magic:binary_magic ~version:binary_version s with
    | Error _ as e -> e
    | Ok payload -> (
      match read_payload (Binio.R.of_string payload) with
      | p -> Ok p
      | exception Binio.R.Corrupt m -> Error m)

let binary_roundtrip_exn p =
  match decode_binary (encode_binary p) with
  | Ok p2 -> p2
  | Error m -> failwith ("Trace_codec.binary_roundtrip_exn: " ^ m)

(* ------------------------------------------------------------------ *)
(* Zero-copy cursor over a binary trace buffer.

   [decode_binary] materializes per-thread event lists and a [Program.t]
   before any analysis can start — for a multi-hundred-MB trace that is
   a second full-size copy of the input plus a list cell per event.  The
   cursor instead validates the envelope in place ({!Binio.crc32_sub},
   no [String.sub] of the payload), records each thread's event-region
   offsets in a single validating scan, and then replays instruction
   rows one epoch at a time through in-place {!Binio.R.of_substring}
   readers — the only per-event allocation is the [Instr.t] values of
   the row currently in flight.

   Acceptance is exactly [decode_binary]'s: same envelope checks, same
   payload limits, same error messages (the fuzz suites quantify over
   both decoders).  Row semantics are exactly the batch pipeline's:
   [iter_rows ?every] yields the rows of
   [Epochs.of_program (with_heartbeats ~every ...)] — see the .mli. *)

module Cursor = struct
  type t = {
    buf : string;
    regions : (int * int) array; (* per-thread (pos, len) into [buf] *)
    counts : int array; (* events per thread *)
    instr_counts : int array; (* instructions per thread *)
    hb_counts : int array; (* heartbeats per thread *)
  }

  let threads c = Array.length c.regions
  let instr_count c = Array.fold_left ( + ) 0 c.instr_counts

  (* One validating pass over the payload: every event is decoded (so a
     bad opcode or truncated operand is rejected here, like
     [read_payload]), but only the region bounds and counts are kept. *)
  let scan_payload buf ~pos ~len =
    let r = Binio.R.of_substring buf ~pos ~len in
    let threads = Binio.R.varint r in
    if threads <= 0 || threads > 4096 then
      raise (Binio.R.Corrupt "bad thread count");
    let regions = Array.make threads (0, 0) in
    let counts = Array.make threads 0 in
    let instr_counts = Array.make threads 0 in
    let hb_counts = Array.make threads 0 in
    for t = 0 to threads - 1 do
      let n = Binio.R.varint r in
      if n > 100_000_000 then raise (Binio.R.Corrupt "bad event count");
      let start = Binio.R.pos r in
      for _ = 1 to n do
        match read_event r with
        | Event.Heartbeat -> hb_counts.(t) <- hb_counts.(t) + 1
        | Event.Instr _ -> instr_counts.(t) <- instr_counts.(t) + 1
      done;
      regions.(t) <- (start, Binio.R.pos r - start);
      counts.(t) <- n
    done;
    Binio.R.expect_end r;
    { buf; regions; counts; instr_counts; hb_counts }

  let of_string s =
    let llen = String.length legacy_magic in
    if String.length s >= llen && String.sub s 0 llen = legacy_magic then
      (* Legacy unchecksummed traces: payload starts right after "BFLY1". *)
      match scan_payload s ~pos:llen ~len:(String.length s - llen) with
      | c -> Ok c
      | exception Binio.R.Corrupt m -> Error m
    else
      (* Envelope validation in place — the same checks, in the same
         order, with the same messages as [Binio.unframe], minus its two
         [String.sub] copies. *)
      let mlen = String.length binary_magic in
      let len = String.length s in
      if len < mlen || String.sub s 0 mlen <> binary_magic then
        Error "bad magic"
      else if len < mlen + 5 then Error "truncated envelope"
      else
        let got_version = Char.code s.[mlen] in
        if got_version <> binary_version then
          Error
            (Printf.sprintf "unsupported format version %d (expected %d)"
               got_version binary_version)
        else begin
          let stored = ref 0 in
          for i = 3 downto 0 do
            stored := (!stored lsl 8) lor Char.code s.[len - 4 + i]
          done;
          let computed = Binio.crc32_sub s ~pos:0 ~len:(len - 4) in
          if !stored <> computed then
            Error
              (Printf.sprintf "CRC mismatch: stored %08x, computed %08x"
                 !stored computed)
          else
            match scan_payload s ~pos:(mlen + 1) ~len:(len - mlen - 5) with
            | c -> Ok c
            | exception Binio.R.Corrupt m -> Error m
        end

  (* Blocks per thread under each chunking mode, mirroring the batch
     pipeline exactly: embedded heartbeats give [Trace.blocks]'s k+1
     blocks for k separators; [~every:h] gives [with_heartbeats]'s
     floor(n/h)+1 (trailing empty block when h divides n, one empty
     block for an empty thread). *)
  let blocks_per_thread ?every c =
    match every with
    | None -> Array.map (fun k -> k + 1) c.hb_counts
    | Some h ->
      if h <= 0 then invalid_arg "Trace_codec.Cursor: every must be > 0";
      Array.map (fun n -> (n / h) + 1) c.instr_counts

  let num_rows ?every c = Array.fold_left max 1 (blocks_per_thread ?every c)

  let iter_rows ?every c f =
    let threads = threads c in
    let blocks_t = blocks_per_thread ?every c in
    let num_l = Array.fold_left max 1 blocks_t in
    let readers =
      Array.init threads (fun t ->
          let pos, len = c.regions.(t) in
          Binio.R.of_substring c.buf ~pos ~len)
    in
    let left = Array.copy c.counts in
    let next_block t =
      let r = readers.(t) in
      let acc = ref [] in
      (match every with
      | None ->
        let stop = ref false in
        while (not !stop) && left.(t) > 0 do
          left.(t) <- left.(t) - 1;
          match read_event r with
          | Event.Heartbeat -> stop := true
          | Event.Instr i -> acc := i :: !acc
        done
      | Some h ->
        (* Embedded heartbeats are stripped and the instruction stream
           re-chunked, mirroring [Trace.with_heartbeats]. *)
        let k = ref 0 in
        while !k < h && left.(t) > 0 do
          left.(t) <- left.(t) - 1;
          match read_event r with
          | Event.Heartbeat -> ()
          | Event.Instr i ->
            incr k;
            acc := i :: !acc
        done);
      Array.of_list (List.rev !acc)
    in
    (* Shorter threads are padded with empty blocks, mirroring
       [Epochs.of_blocks]. *)
    for l = 0 to num_l - 1 do
      f
        (Array.init threads (fun t ->
             if l < blocks_t.(t) then next_block t else [||]))
    done
end
