type t =
  | Assign_const of Addr.t
  | Assign_unop of Addr.t * Addr.t
  | Assign_binop of Addr.t * Addr.t * Addr.t
  | Read of Addr.t
  | Malloc of { base : Addr.t; size : int }
  | Free of { base : Addr.t; size : int }
  | Taint_source of Addr.t
  | Untaint of Addr.t
  | Jump_via of Addr.t
  | Syscall_arg of Addr.t
  | Lock of Addr.t
  | Unlock of Addr.t
  | Fork of Tid.t
  | Join of Tid.t
  | Nop

let equal a b = Stdlib.( = ) a b
let compare a b = Stdlib.compare a b

let pp ppf = function
  | Assign_const x -> Format.fprintf ppf "%a := const" Addr.pp x
  | Assign_unop (x, a) -> Format.fprintf ppf "%a := op %a" Addr.pp x Addr.pp a
  | Assign_binop (x, a, b) ->
    Format.fprintf ppf "%a := %a op %a" Addr.pp x Addr.pp a Addr.pp b
  | Read a -> Format.fprintf ppf "read %a" Addr.pp a
  | Malloc { base; size } -> Format.fprintf ppf "malloc %a %d" Addr.pp base size
  | Free { base; size } -> Format.fprintf ppf "free %a %d" Addr.pp base size
  | Taint_source x -> Format.fprintf ppf "taint %a" Addr.pp x
  | Untaint x -> Format.fprintf ppf "untaint %a" Addr.pp x
  | Jump_via x -> Format.fprintf ppf "jump_via %a" Addr.pp x
  | Syscall_arg x -> Format.fprintf ppf "syscall_arg %a" Addr.pp x
  | Lock m -> Format.fprintf ppf "lock %a" Addr.pp m
  | Unlock m -> Format.fprintf ppf "unlock %a" Addr.pp m
  | Fork u -> Format.fprintf ppf "fork %a" Tid.pp u
  | Join u -> Format.fprintf ppf "join %a" Tid.pp u
  | Nop -> Format.fprintf ppf "nop"

let to_string i = Format.asprintf "%a" pp i

let reads = function
  | Assign_const _ | Malloc _ | Free _ | Taint_source _ | Untaint _ | Nop
  | Lock _ | Unlock _ | Fork _ | Join _ ->
    []
  | Assign_unop (_, a) -> [ a ]
  | Assign_binop (_, a, b) -> if Addr.equal a b then [ a ] else [ a; b ]
  | Read a -> [ a ]
  | Jump_via x -> [ x ]
  | Syscall_arg x -> [ x ]

let writes = function
  | Assign_const x | Assign_unop (x, _) | Assign_binop (x, _, _) -> Some x
  | Taint_source x | Untaint x -> Some x
  | Read _ | Malloc _ | Free _ | Jump_via _ | Syscall_arg _ | Nop | Lock _
  | Unlock _ | Fork _ | Join _ ->
    None

let accesses i =
  match writes i with
  | None -> reads i
  | Some x -> x :: List.filter (fun a -> not (Addr.equal a x)) (reads i)

let alloc_effect = function
  | Malloc { base; size } -> `Alloc (base, size)
  | Free { base; size } -> `Free (base, size)
  | Assign_const _ | Assign_unop _ | Assign_binop _ | Read _ | Taint_source _
  | Untaint _ | Jump_via _ | Syscall_arg _ | Nop | Lock _ | Unlock _ | Fork _
  | Join _ ->
    `None

let is_memory_event i =
  match i with
  | Malloc _ | Free _ -> true
  | Assign_const _ | Assign_unop _ | Assign_binop _ | Read _ | Taint_source _
  | Untaint _ | Jump_via _ | Syscall_arg _ | Nop | Lock _ | Unlock _ | Fork _
  | Join _ ->
    accesses i <> []

let taint_sink = function
  | Jump_via x | Syscall_arg x -> Some x
  | Assign_const _ | Assign_unop _ | Assign_binop _ | Read _ | Malloc _
  | Free _ | Taint_source _ | Untaint _ | Nop | Lock _ | Unlock _ | Fork _
  | Join _ ->
    None

let sync_effect = function
  | Lock m -> `Lock m
  | Unlock m -> `Unlock m
  | Fork u -> `Fork u
  | Join u -> `Join u
  | Assign_const _ | Assign_unop _ | Assign_binop _ | Read _ | Malloc _
  | Free _ | Taint_source _ | Untaint _ | Jump_via _ | Syscall_arg _ | Nop ->
    `None
