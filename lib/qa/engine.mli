(** The fuzzing loop: generate → differential battery → shrink.

    One seed determines the whole campaign.  Each iteration draws a grid
    from the lifeguard's instruction profile, runs {!Differential.check}
    on it, and stops at the first counterexample, which is greedily
    minimized ({!Shrinker}) and serializable via {!Grid.encode} into a
    trace file that {!check_program} (and the CLI's [fuzz --replay])
    re-runs.

    Telemetry under the installed {!Obs} sink, labelled
    [lifeguard=<name>]: [qa.grids] (grids generated), [qa.mismatches]
    (mismatching combinations found), [qa.shrink_steps] (accepted
    reductions, unlabelled — emitted by {!Shrinker}), and the
    [qa.check.ns] / [qa.shrink.ns] spans. *)

type crash = {
  crash_at : int option;
      (** kill at this epoch, or [None] for a per-iteration seeded one *)
  every : int;  (** checkpoint interval while the doomed run lives *)
}

type config = {
  iterations : int;
  seed : int;
  shrink : bool;  (** minimize the first failing grid *)
  shape : Grid_gen.shape;
  diff : Differential.config;
  crash : crash option;
      (** also run {!Differential.check_recovery} on every grid, once per
          configured driver × fact-table backend *)
}

val default_config : config
(** 100 iterations, seed 1, shrinking on, {!Grid_gen.default_shape},
    {!Differential.default_config}, crash checks off. *)

type counterexample = {
  iteration : int;  (** 0-based iteration that produced it *)
  grid : Grid.t;  (** the original failing grid *)
  mismatches : Differential.mismatch list;  (** its battery failures *)
  shrunk : Grid.t option;  (** minimized grid, when [config.shrink] *)
  shrink_steps : int;
}

type outcome = {
  lifeguard : Differential.lifeguard;
  grids : int;  (** grids actually generated and checked *)
  counterexample : counterexample option;
}

val run :
  ?pools:Butterfly.Domain_pool.t list ->
  ?config:config ->
  Differential.lifeguard ->
  outcome
(** Fuzz one lifeguard.  [pools] are reused for every pooled driver run;
    when omitted, the engine creates a one-worker and a two-worker pool
    for the campaign and shuts them down afterwards. *)

val check_program :
  ?pools:Butterfly.Domain_pool.t list ->
  ?diff:Differential.config ->
  Differential.lifeguard ->
  Tracing.Program.t ->
  Differential.mismatch list
(** Replay a serialized counterexample (or any trace) through the same
    battery [run] applies — heartbeats present in the program delimit the
    epochs.  Creates default pools when none are given, like [run]. *)
