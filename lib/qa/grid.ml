type t = Tracing.Instr.t array list array

let threads = Array.length

let num_epochs g = Array.fold_left (fun m bs -> max m (List.length bs)) 0 g

let instr_count g =
  Array.fold_left
    (fun n bs -> List.fold_left (fun n b -> n + Array.length b) n bs)
    0 g

(* Operand complexity: one unit per operand slot plus the operand's
   magnitude, so both structural simplifications (binop -> unop -> const)
   and address lowering (a -> 0) strictly decrease it. *)
let instr_weight (i : Tracing.Instr.t) =
  match i with
  | Assign_const x -> 1 + x
  | Assign_unop (x, a) -> 2 + x + a
  | Assign_binop (x, a, b) -> 3 + x + a + b
  | Read a -> 1 + a
  | Malloc { base; size } | Free { base; size } -> 2 + base + size
  | Taint_source x | Untaint x | Jump_via x | Syscall_arg x -> 1 + x
  | Lock m | Unlock m -> 1 + m
  | Fork u | Join u -> 1 + u
  | Nop -> 0

let weight g =
  Array.fold_left
    (fun n bs ->
      List.fold_left
        (fun n b -> Array.fold_left (fun n i -> n + 1 + instr_weight i) n b)
        n bs)
    0 g

let normalize g = Array.map (fun bs -> if bs = [] then [ [||] ] else bs) g

let equal a b = normalize a = normalize b

let to_program g =
  Tracing.Program.make
    (Array.to_list (Array.map Tracing.Trace.of_blocks g))

let of_program p =
  Array.init (Tracing.Program.threads p) (fun t ->
      Tracing.Trace.blocks (Tracing.Program.trace p t))

let encode g = Tracing.Trace_codec.encode (to_program g)

let decode s = Result.map of_program (Tracing.Trace_codec.decode s)

let epochs g = Butterfly.Epochs.of_blocks g

let pp ppf g =
  Array.iteri
    (fun t bs ->
      Format.fprintf ppf "T%d:" t;
      List.iter
        (fun b ->
          Format.fprintf ppf " [";
          Array.iteri
            (fun k i ->
              if k > 0 then Format.fprintf ppf "; ";
              Format.fprintf ppf "%s" (Tracing.Instr.to_string i))
            b;
          Format.fprintf ppf "]")
        bs;
      Format.fprintf ppf "@.")
    g
