(** Epoch grids as the fuzzer's currency.

    A grid is the raw form of an epoch-structured execution: per thread,
    the list of blocks it executed, possibly ragged (threads disagreeing
    on how many epochs they saw — the heartbeat-skew shapes the
    generators produce and {!Butterfly.Epochs.of_blocks} pads).  This
    module gives grids a size order for the shrinker and a faithful
    round-trip through {!Tracing.Trace_codec}, so any counterexample the
    fuzzer minimizes is a file that replays. *)

type t = Tracing.Instr.t array list array
(** [g.(tid)] is thread [tid]'s block list, epoch order. *)

val threads : t -> int
val num_epochs : t -> int
(** Maximum block-list length over the threads. *)

val instr_count : t -> int

val weight : t -> int
(** Strictly positive measure of operand complexity (operand counts plus
    address magnitudes).  Every simplification the shrinker may apply
    strictly decreases [(instr_count, weight)] lexicographically, which is
    its termination argument. *)

val normalize : t -> t
(** Canonical form under codec round-trips: a thread with zero blocks
    becomes a thread with one empty block (an empty trace decodes as one
    empty block). *)

val equal : t -> t -> bool
(** Structural equality of normalized grids. *)

val to_program : t -> Tracing.Program.t
(** One trace per thread, a heartbeat between consecutive blocks —
    [Tracing.Trace.blocks] recovers exactly the (normalized) grid. *)

val of_program : Tracing.Program.t -> t

val encode : t -> string
(** Text {!Tracing.Trace_codec} form of {!to_program}: the replayable
    counterexample artifact. *)

val decode : string -> (t, string) result

val epochs : t -> Butterfly.Epochs.t
val pp : Format.formatter -> t -> unit
