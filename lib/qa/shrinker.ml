let m_steps = Obs.Counter.make "qa.shrink_steps"

(* --- Candidate enumeration.  Coarse to fine; each candidate strictly
   decreases (instr_count, weight), the termination measure. --- *)

let drop_epoch (g : Grid.t) l : Grid.t =
  Array.map (fun bs -> List.filteri (fun k _ -> k <> l) bs) g

let drop_thread (g : Grid.t) t : Grid.t =
  Array.of_list
    (List.filteri (fun k _ -> k <> t) (Array.to_list g))

let drop_instr (g : Grid.t) ~tid ~block ~index : Grid.t =
  Array.mapi
    (fun t bs ->
      if t <> tid then bs
      else
        List.mapi
          (fun k b ->
            if k <> block then b
            else
              Array.of_list
                (List.filteri (fun i _ -> i <> index) (Array.to_list b)))
          bs)
    g

let replace_instr (g : Grid.t) ~tid ~block ~index instr : Grid.t =
  Array.mapi
    (fun t bs ->
      if t <> tid then bs
      else
        List.mapi
          (fun k b ->
            if k <> block then b
            else Array.mapi (fun i old -> if i = index then instr else old) b)
          bs)
    g

(* Strictly weight-decreasing one-step simplifications of an instruction
   (see Grid.weight): structural reductions first, then operand lowering. *)
let simplify_instr (i : Tracing.Instr.t) : Tracing.Instr.t list =
  let open Tracing.Instr in
  match i with
  | Assign_binop (x, a, b) -> [ Assign_unop (x, a); Assign_unop (x, b) ]
  | Assign_unop (x, a) ->
    [ Assign_const x ]
    @ (if x > 0 then [ Assign_unop (0, a) ] else [])
    @ if a > 0 then [ Assign_unop (x, 0) ] else []
  | Assign_const x -> if x > 0 then [ Assign_const 0 ] else []
  | Read a -> if a > 0 then [ Read 0 ] else []
  | Malloc { base; size } ->
    (if size > 1 then [ Malloc { base; size = 1 } ] else [])
    @ if base > 0 then [ Malloc { base = 0; size } ] else []
  | Free { base; size } ->
    (if size > 1 then [ Free { base; size = 1 } ] else [])
    @ if base > 0 then [ Free { base = 0; size } ] else []
  | Taint_source x -> if x > 0 then [ Taint_source 0 ] else []
  | Untaint x -> if x > 0 then [ Untaint 0 ] else []
  | Jump_via x -> if x > 0 then [ Jump_via 0 ] else []
  | Syscall_arg x -> if x > 0 then [ Syscall_arg 0 ] else []
  | Lock m -> if m > 0 then [ Lock 0 ] else []
  | Unlock m -> if m > 0 then [ Unlock 0 ] else []
  | Fork u -> if u > 0 then [ Fork 0 ] else []
  | Join u -> if u > 0 then [ Join 0 ] else []
  | Nop -> []

(* All one-step reductions of [g], coarsest first, lazily (a Seq so the
   greedy search stops evaluating [fails] at the first accepted one). *)
let candidates (g : Grid.t) : Grid.t Seq.t =
  let epochs () =
    Seq.init (Grid.num_epochs g) (fun k -> Grid.num_epochs g - 1 - k)
    |> Seq.map (drop_epoch g)
  in
  let threads () =
    if Grid.threads g <= 1 then Seq.empty
    else
      Seq.init (Grid.threads g) (fun k -> Grid.threads g - 1 - k)
      |> Seq.map (drop_thread g)
  in
  let per_instr f =
    Array.to_seqi g
    |> Seq.concat_map (fun (tid, bs) ->
           List.to_seq bs
           |> Seq.mapi (fun block b -> (block, b))
           |> Seq.concat_map (fun (block, b) ->
                  Array.to_seqi b
                  |> Seq.concat_map (fun (index, i) -> f ~tid ~block ~index i)))
  in
  let instr_drops () =
    per_instr (fun ~tid ~block ~index _ ->
        Seq.return (drop_instr g ~tid ~block ~index))
  in
  let simplifications () =
    per_instr (fun ~tid ~block ~index i ->
        List.to_seq (simplify_instr i)
        |> Seq.map (replace_instr g ~tid ~block ~index))
  in
  Seq.concat
    (List.to_seq [ epochs (); threads (); instr_drops (); simplifications () ])

let shrink ?(max_steps = 10_000) ~fails g0 =
  if not (fails g0) then
    invalid_arg "Shrinker.shrink: the input grid does not fail";
  let rec go g steps =
    if steps >= max_steps then (g, steps)
    else
      match Seq.find fails (candidates g) with
      | None -> (g, steps)
      | Some g' ->
        Obs.Counter.incr m_steps;
        go g' (steps + 1)
  in
  go g0 0
