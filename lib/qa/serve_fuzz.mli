(** Frame-protocol fuzzing against a live {!Serve.Daemon}.

    Where {!Engine} fuzzes the analyses, this fuzzes the wire: each
    iteration builds a valid serving conversation (HELLO, one DATA per
    epoch of a seeded {!Grid_gen} grid, FIN), mutilates it — dropped,
    duplicated and reordered frames, truncation, bit flips, injected
    garbage — and plays the wreckage at an in-process daemon over a real
    socket with torn writes.

    The properties are the daemon's containment guarantees, not the
    analysis results (a mutated stream has no meaningful report):

    {ul
    {- every session ends in exactly one of: a [REPORT], one stable
       [ERROR] frame, or a clean hang-up — never daemon-side garbage,
       never frames after an [ERROR];}
    {- the daemon survives: [STATUS] answers after every iteration;}
    {- other tenants are unaffected: an unmutated control session run
       after the campaign still produces the batch-identical report.}}

    Any violation stops the campaign with a description and the
    iteration's seed state is recoverable from [config.seed]. *)

type config = {
  iterations : int;
  seed : int;  (** one seed reproduces the whole campaign *)
  shape : Grid_gen.shape;  (** grids behind the valid base streams *)
}

val default_config : config
(** 200 iterations, seed 1, {!Grid_gen.default_shape}. *)

type outcome = {
  iterations : int;  (** iterations completed *)
  errors : int;  (** sessions rejected with a stable [ERROR] frame *)
  reports : int;  (** mutations that left the stream valid end-to-end *)
  hangups : int;  (** daemon hang-ups without a terminal frame *)
  failure : string option;  (** first containment violation, if any *)
}

val pp_outcome : Format.formatter -> outcome -> unit

val run : ?config:config -> unit -> outcome
(** Boot a daemon on a fresh temporary socket, run the campaign, verify
    the control tenant, shut the daemon down.  Telemetry under the
    installed {!Obs} sink: [qa.serve.streams], [qa.serve.errors],
    [qa.serve.reports] counters. *)
