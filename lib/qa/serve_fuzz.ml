type config = { iterations : int; seed : int; shape : Grid_gen.shape }

let default_config =
  { iterations = 200; seed = 1; shape = Grid_gen.default_shape }

type outcome = {
  iterations : int;
  errors : int;
  reports : int;
  hangups : int;
  failure : string option;
}

let pp_outcome ppf o =
  Format.fprintf ppf
    "%d streams: %d rejected, %d reported, %d hangups%s" o.iterations o.errors
    o.reports o.hangups
    (match o.failure with None -> "" | Some m -> ", FAILURE: " ^ m)

(* ------------------------------------------------------------------ *)
(* Valid base conversations.                                           *)

let lifeguard_of_profile : Grid_gen.profile -> Recovery.Snapshot.lifeguard =
  function
  | Alloc -> Addrcheck
  | Init -> Initcheck
  | Taint -> Taintcheck
  | Racy | Mixed -> Racecheck

let profiles : Grid_gen.profile array = [| Alloc; Init; Taint; Racy; Mixed |]

let base_frames ~shape ~tenant rst =
  let profile = profiles.(Random.State.int rst (Array.length profiles)) in
  let g = Grid_gen.grid ~shape profile rst in
  let rows = Recovery.Runner.rows_of (Grid.epochs g) in
  let hello =
    {
      Serve.Wire.tenant;
      lifeguard = lifeguard_of_profile profile;
      driver = `Sequential;
      state = (if Random.State.bool rst then `Functional else `Flat);
      relaxed = Random.State.bool rst;
      threads = Grid.threads g;
    }
  in
  Serve.Wire.Hello hello
  :: (Array.to_list rows
     |> List.map (fun row -> Serve.Wire.Data (Serve.Client.chunk_of_row row)))
  @ [ Serve.Wire.Fin ]

(* ------------------------------------------------------------------ *)
(* Mutations.  Frame-level reshuffles first, then byte-level damage on
   the encoded stream; each iteration applies one of each family with
   independent probability, and always at least one of either.          *)

let swap l i j =
  let a = Array.of_list l in
  let t = a.(i) in
  a.(i) <- a.(j);
  a.(j) <- t;
  Array.to_list a

let mutate_frames rst frames =
  let n = List.length frames in
  match Random.State.int rst 3 with
  | 0 when n > 1 ->
    (* drop one *)
    let k = Random.State.int rst n in
    List.filteri (fun i _ -> i <> k) frames
  | 1 ->
    (* duplicate one *)
    let k = Random.State.int rst n in
    List.concat_map
      (fun (i, f) -> if i = k then [ f; f ] else [ f ])
      (List.mapi (fun i f -> (i, f)) frames)
  | _ when n > 1 ->
    (* reorder two *)
    swap frames (Random.State.int rst n) (Random.State.int rst n)
  | _ -> frames

let mutate_bytes rst s =
  let n = String.length s in
  if n = 0 then s
  else
    match Random.State.int rst 3 with
    | 0 ->
      (* truncate: anywhere, including mid-header *)
      String.sub s 0 (Random.State.int rst n)
    | 1 ->
      (* flip one bit — length prefixes, tags and payloads alike *)
      let b = Bytes.of_string s in
      let k = Random.State.int rst n in
      Bytes.set b k
        (Char.chr (Char.code (Bytes.get b k) lxor (1 lsl Random.State.int rst 8)));
      Bytes.unsafe_to_string b
    | _ ->
      (* inject garbage at a random cut *)
      let k = Random.State.int rst (n + 1) in
      let len = 1 + Random.State.int rst 16 in
      let junk = String.init len (fun _ -> Char.chr (Random.State.int rst 256)) in
      String.sub s 0 k ^ junk ^ String.sub s k (n - k)

let mutate rst frames =
  let frames, touched =
    if Random.State.int rst 4 < 3 then (mutate_frames rst frames, true)
    else (frames, false)
  in
  let stream = String.concat "" (List.map Serve.Wire.encode frames) in
  if (not touched) || Random.State.int rst 4 < 2 then mutate_bytes rst stream
  else stream

(* ------------------------------------------------------------------ *)
(* Playing a stream at the daemon, torn-write style.                   *)

let write_stream rst fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  (try
     while !off < n do
       let len = min (1 + Random.State.int rst 97) (n - !off) in
       match Unix.write fd b !off len with
       | written -> off := !off + written
       | exception Unix.Unix_error (EINTR, _, _) -> ()
     done
   with Unix.Unix_error ((EPIPE | ECONNRESET), _, _) ->
     (* The daemon already rejected and hung up; whatever it sent first
        is still readable. *)
     ());
  try Unix.shutdown fd SHUTDOWN_SEND with Unix.Unix_error _ -> ()

let read_responses fd =
  let reader = Serve.Wire.Reader.create () in
  let buf = Bytes.create 4096 in
  let rec go acc =
    match Serve.Wire.Reader.next reader with
    | Ok (Some f) -> go (f :: acc)
    | Error m -> Error ("daemon sent garbage: " ^ m)
    | Ok None -> (
      match Unix.read fd buf 0 (Bytes.length buf) with
      | 0 -> Ok (List.rev acc)
      | n ->
        Serve.Wire.Reader.feed reader (Bytes.unsafe_to_string buf) ~pos:0
          ~len:n;
        go acc
      | exception Unix.Unix_error (EINTR, _, _) -> go acc
      | exception Unix.Unix_error (ECONNRESET, _, _) -> Ok (List.rev acc))
  in
  go []

(* The containment contract on what the daemon said back: HELLO_OK and
   STATUS_OK may appear mid-conversation, but a REPORT or ERROR frame is
   terminal — nothing after it — and at most one of either arrives.      *)
let classify = function
  | Error m -> Error m
  | Ok frames ->
    let rec walk = function
      | [] -> Ok `Hangup
      | [ Serve.Wire.Report _ ] -> Ok `Report
      | [ Serve.Wire.Error _ ] -> Ok `Error
      | (Serve.Wire.Hello_ok _ | Serve.Wire.Status_ok _) :: rest -> walk rest
      | f :: _ :: _ when (match f with
          | Serve.Wire.Report _ | Serve.Wire.Error _ -> true
          | _ -> false) ->
        Error
          (Format.asprintf "daemon spoke past a terminal frame: %a"
             Serve.Wire.pp f)
      | f :: _ ->
        Error (Format.asprintf "unexpected daemon frame: %a" Serve.Wire.pp f)
    in
    walk frames

(* ------------------------------------------------------------------ *)

let connect socket =
  let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
  match Unix.connect fd (ADDR_UNIX socket) with
  | () -> Ok fd
  | exception Unix.Unix_error (e, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Error ("cannot connect: " ^ Unix.error_message e)

let control_check ~socket rst shape =
  let g = Grid_gen.grid ~shape Grid_gen.Alloc rst in
  let rows = Recovery.Runner.rows_of (Grid.epochs g) in
  let expected =
    Serve.Report.addrcheck (Lifeguards.Addrcheck.run (Grid.epochs g))
  in
  let hello =
    {
      Serve.Wire.tenant = "control";
      lifeguard = Recovery.Snapshot.Addrcheck;
      driver = `Sequential;
      state = `Functional;
      relaxed = false;
      threads = Grid.threads g;
    }
  in
  match Serve.Client.run_tenant ~socket ~hello rows with
  | Error m -> Some ("control tenant failed: " ^ m)
  | Ok (_, report) ->
    if String.equal report expected then None
    else Some "control tenant's report diverged from the batch run"

let run ?(config = default_config) () =
  let labels = [ ("campaign", "serve") ] in
  let m_streams = Obs.Counter.make ~labels "qa.serve.streams" in
  let m_errors = Obs.Counter.make ~labels "qa.serve.errors" in
  let m_reports = Obs.Counter.make ~labels "qa.serve.reports" in
  let socket = Filename.temp_file "serve_fuzz" ".sock" in
  Sys.remove socket;
  let stop = Atomic.make `Run in
  let cfg =
    Serve.Daemon.config ~socket
      ~policy:
        (Serve.Policy.v
           ~max_sessions:(config.iterations + 2)
           ~max_queued:64)
      ()
  in
  let daemon =
    Domain.spawn (fun () ->
        Serve.Daemon.run ~stop:(fun () -> Atomic.get stop) cfg)
  in
  let rst = Random.State.make [| config.seed |] in
  let errors = ref 0 and reports = ref 0 and hangups = ref 0 in
  let failure = ref None in
  let iterations = ref 0 in
  (* Wait for the socket before the first shot. *)
  (match Serve.Client.status ~socket () with
  | Ok _ -> ()
  | Error m -> failure := Some ("daemon never came up: " ^ m));
  while !failure = None && !iterations < config.iterations do
    let tenant = Printf.sprintf "fz%d" !iterations in
    let frames = base_frames ~shape:config.shape ~tenant rst in
    let stream = mutate rst frames in
    (match connect socket with
    | Error m -> failure := Some m
    | Ok fd ->
      Fun.protect
        ~finally:(fun () ->
          try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          write_stream rst fd stream;
          Obs.Counter.incr m_streams;
          match classify (read_responses fd) with
          | Ok `Error ->
            incr errors;
            Obs.Counter.incr m_errors
          | Ok `Report ->
            incr reports;
            Obs.Counter.incr m_reports
          | Ok `Hangup -> incr hangups
          | Error m ->
            failure := Some (Printf.sprintf "stream %d: %s" !iterations m)));
    (* The daemon must still be standing. *)
    if !failure = None then (
      match Serve.Client.status ~socket ~retries:5 () with
      | Ok _ -> ()
      | Error m ->
        failure :=
          Some (Printf.sprintf "daemon down after stream %d: %s" !iterations m));
    incr iterations
  done;
  if !failure = None then failure := control_check ~socket rst config.shape;
  Atomic.set stop `Quit;
  Domain.join daemon;
  if Sys.file_exists socket then Sys.remove socket;
  {
    iterations = !iterations;
    errors = !errors;
    reports = !reports;
    hangups = !hangups;
    failure = !failure;
  }
