(** The differential battery one grid is subjected to.

    Two families of checks, mirroring the two guarantees the repo makes:

    {ul
    {- {b Driver equivalence.}  Every execution driver must produce a
       structurally identical report: the sequential batch driver, and
       the pooled drivers (streaming scheduler for AddrCheck/InitCheck,
       epoch-barrier fan-out for TaintCheck) on each supplied pool.  For
       TaintCheck the equivalence is checked per analysis variant
       (sequential/relaxed chase × two-phase/one-phase).  Reports are
       compared via a canonical fingerprint covering the error list in
       order, totals, per-block statistics and SOS history — not just the
       flagged sets.}
    {- {b Soundness (Theorems 6.1, 6.2).}  For each memory model, the
       valid orderings of the grid are enumerated (or sampled past
       [oracle_cap]) and replayed through the sequential single-trace
       lifeguard; everything it flags on any ordering must be flagged by
       the butterfly run — the zero-false-negative claim, checked
       generatively.}}

    A non-empty mismatch list is a genuine bug in one of the drivers (or
    an unsound analysis change): the fuzz engine shrinks the grid and
    serializes it as a replayable trace. *)

type lifeguard = Addrcheck | Initcheck | Taintcheck | Racecheck

val lifeguard_to_string : lifeguard -> string
val all_lifeguards : lifeguard list

val profile_of : lifeguard -> Grid_gen.profile
(** The instruction mix that exercises this lifeguard. *)

type driver = Pooled | Wavefront
    (** The parallel drivers under test: the epoch-barrier pooled path
        and the pipelined wavefront path.  The sequential driver is the
        baseline, not a matrix entry. *)

val driver_to_string : driver -> string
val all_drivers : driver list

type backend = [ `Functional | `Flat ]
(** The fact-table backends under test (see {!Lifeguards.Addrcheck.backend}):
    the functional reference structures and the flat arena-backed fast
    path.  The functional sequential run is the baseline; every other
    (driver, pool, backend) combination must match it byte for byte. *)

val backend_to_string : backend -> string
val all_backends : backend list

type config = {
  oracle_cap : int;
      (** enumerate valid orderings up to this many, else sample *)
  oracle_samples : int;  (** samples drawn when enumeration is capped *)
  oracle_seed : int;  (** seed for the sampling fallback *)
  models : Memmodel.Consistency.t list;
      (** memory models the oracle checks quantify over *)
  drivers : driver list;
      (** parallel drivers the equivalence checks quantify over *)
  states : backend list;
      (** fact-table backends the equivalence checks quantify over *)
}

val default_config : config
(** cap 240, 24 samples, all three consistency models, both drivers,
    both backends. *)

type mismatch = {
  lifeguard : lifeguard;
  subject : string;  (** which combination diverged / which theorem broke *)
  details : string list;  (** fingerprints or missed-finding descriptions *)
}

val pp_mismatch : Format.formatter -> mismatch -> unit

val check :
  ?config:config ->
  ?pools:Butterfly.Domain_pool.t list ->
  lifeguard ->
  Grid.t ->
  mismatch list
(** Run the full battery on one grid.  [pools] are caller-owned worker
    pools reused across calls (the fuzz engine shares two across its
    whole corpus); when omitted, only the sequential driver runs and the
    battery degrades to the oracle checks. *)

val check_recovery :
  ?pool:Butterfly.Domain_pool.t ->
  ?wavefront:bool ->
  ?state:backend ->
  ?every:int ->
  ?crash_at:int ->
  ?seed:int ->
  lifeguard ->
  Grid.t ->
  mismatch list
(** Crash-recovery check ({!Recovery.Crash_sim}): run the grid with a
    checkpoint every [every] epochs (default 1), kill the run at
    [crash_at] — or at a [seed]-determined epoch — resume from the
    surviving snapshot, and compare fingerprints with an uninterrupted
    run.  [wavefront] (with [pool]) runs both the doomed and resumed
    engines in pipelined mode — checkpoints still cut at sealed-epoch
    frontiers.  [state] runs both engines on the given fact-table backend
    (snapshots themselves are backend-portable).  The snapshot lives in a
    temp file, removed afterwards.  A mismatch here is a
    checkpoint/restore bug. *)
