(** Greedy delta-debugging minimizer for failing grids.

    Given a grid on which [fails] holds, repeatedly tries reductions in
    coarse-to-fine order — drop a whole epoch, drop a whole thread, drop a
    single instruction, simplify one instruction's operands (binop →
    unop → constant, addresses and allocation sizes towards their minima)
    — keeping a candidate only when [fails] still holds on it.

    Guarantees (property-tested in [test/test_qa.ml]):
    {ul
    {- the result still satisfies [fails];}
    {- the result is never larger than the input: every accepted step
       strictly decreases [(Grid.instr_count, Grid.weight)]
       lexicographically, which also bounds the number of steps;}
    {- the result is well-formed: it round-trips through
       {!Tracing.Trace_codec} (via {!Grid.encode}/{!Grid.decode}).}}

    [fails] is treated as a black box and must be exception-free (the
    fuzz engine wraps the differential battery so that a crashing
    candidate counts as not failing, keeping the shrink anchored to the
    original kind of counterexample).

    Each accepted reduction bumps the [qa.shrink_steps] counter. *)

val shrink :
  ?max_steps:int -> fails:(Grid.t -> bool) -> Grid.t -> Grid.t * int
(** [shrink ~fails g] is [(g', steps)] with [steps] accepted reductions.
    [max_steps] (default [10_000]) is a safety bound only — termination
    does not depend on it.  Raises [Invalid_argument] if [fails g] does
    not hold on the input. *)
