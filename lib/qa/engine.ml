type crash = { crash_at : int option; every : int }

type config = {
  iterations : int;
  seed : int;
  shrink : bool;
  shape : Grid_gen.shape;
  diff : Differential.config;
  crash : crash option;
}

let default_config =
  {
    iterations = 100;
    seed = 1;
    shrink = true;
    shape = Grid_gen.default_shape;
    diff = Differential.default_config;
    crash = None;
  }

type counterexample = {
  iteration : int;
  grid : Grid.t;
  mismatches : Differential.mismatch list;
  shrunk : Grid.t option;
  shrink_steps : int;
}

type outcome = {
  lifeguard : Differential.lifeguard;
  grids : int;
  counterexample : counterexample option;
}

let with_default_pools pools f =
  match pools with
  | Some ps -> f ps
  | None ->
    (* One-worker and two-worker pools: the degenerate serial schedule
       and a genuinely concurrent one, shared across the whole campaign
       (pool creation spawns domains — far too heavy per iteration). *)
    Butterfly.Domain_pool.with_pool ~name:"qa-1" ~domains:1 (fun p1 ->
        Butterfly.Domain_pool.with_pool ~name:"qa-2" ~domains:2 (fun p2 ->
            f [ p1; p2 ]))

let run ?pools ?(config = default_config) lifeguard =
  let labels =
    [ ("lifeguard", Differential.lifeguard_to_string lifeguard) ]
  in
  let m_grids = Obs.Counter.make ~labels "qa.grids" in
  let m_mismatches = Obs.Counter.make ~labels "qa.mismatches" in
  let sp_check = Obs.Span.make ~labels "qa.check.ns" in
  let sp_shrink = Obs.Span.make ~labels "qa.shrink.ns" in
  Obs.Counter.add m_grids 0;
  Obs.Counter.add m_mismatches 0;
  with_default_pools pools @@ fun pools ->
  let rng = Random.State.make [| config.seed; 0x9a5eed |] in
  let profile = Differential.profile_of lifeguard in
  let check ~crash_seed g =
    let base = Differential.check ~config:config.diff ~pools lifeguard g in
    match config.crash with
    | None -> base
    | Some c ->
      (* The most concurrent pool on offer exercises pooled resume; the
         crash check runs once per configured driver so wavefront resume
         gets the same coverage as the barrier path. *)
      let pool =
        match List.rev pools with [] -> None | p :: _ -> Some p
      in
      base
      @ List.concat_map
          (fun d ->
            List.concat_map
              (fun state ->
                Differential.check_recovery ?pool
                  ~wavefront:(d = Differential.Wavefront) ~state ~every:c.every
                  ?crash_at:c.crash_at ~seed:crash_seed lifeguard g)
              config.diff.Differential.states)
          config.diff.Differential.drivers
  in
  let rec loop i =
    if i >= config.iterations then { lifeguard; grids = i; counterexample = None }
    else begin
      let g = Grid_gen.grid ~shape:config.shape profile rng in
      (* Derived, not drawn from [rng]: the grid stream stays identical
         whether or not the crash checks are enabled. *)
      let crash_seed = (config.seed * 1_000_003) + i in
      Obs.Counter.incr m_grids;
      match Obs.Span.time sp_check (fun () -> check ~crash_seed g) with
      | [] -> loop (i + 1)
      | mismatches ->
        Obs.Counter.add m_mismatches (List.length mismatches);
        let shrunk, shrink_steps =
          if not config.shrink then (None, 0)
          else
            (* A candidate that crashes the battery is a different bug:
               treat it as not failing so the minimization stays anchored
               to the mismatch actually found. *)
            let fails g' = match check ~crash_seed g' with [] -> false | _ -> true | exception _ -> false in
            let g', steps =
              Obs.Span.time sp_shrink (fun () -> Shrinker.shrink ~fails g)
            in
            (Some g', steps)
        in
        {
          lifeguard;
          grids = i + 1;
          counterexample =
            Some { iteration = i; grid = g; mismatches; shrunk; shrink_steps };
        }
    end
  in
  loop 0

let check_program ?pools ?(diff = Differential.default_config) lifeguard p =
  with_default_pools pools @@ fun pools ->
  Differential.check ~config:diff ~pools lifeguard (Grid.of_program p)
