module AC = Lifeguards.Addrcheck
module IC = Lifeguards.Initcheck
module TC = Lifeguards.Taintcheck
module RC = Lifeguards.Racecheck
module IS = Butterfly.Interval_set

type lifeguard = Addrcheck | Initcheck | Taintcheck | Racecheck

let lifeguard_to_string = function
  | Addrcheck -> "addrcheck"
  | Initcheck -> "initcheck"
  | Taintcheck -> "taintcheck"
  | Racecheck -> "racecheck"

let all_lifeguards = [ Addrcheck; Initcheck; Taintcheck; Racecheck ]

let profile_of = function
  | Addrcheck -> Grid_gen.Alloc
  | Initcheck -> Grid_gen.Init
  | Taintcheck -> Grid_gen.Taint
  | Racecheck -> Grid_gen.Racy

type driver = Pooled | Wavefront

let driver_to_string = function Pooled -> "pooled" | Wavefront -> "wavefront"
let all_drivers = [ Pooled; Wavefront ]

type backend = [ `Functional | `Flat ]

let backend_to_string = function `Functional -> "functional" | `Flat -> "flat"
let all_backends : backend list = [ `Functional; `Flat ]

type config = {
  oracle_cap : int;
  oracle_samples : int;
  oracle_seed : int;
  models : Memmodel.Consistency.t list;
  drivers : driver list;
  states : backend list;
}

let default_config =
  {
    oracle_cap = 240;
    oracle_samples = 24;
    oracle_seed = 7;
    models = Memmodel.Consistency.all;
    drivers = all_drivers;
    states = all_backends;
  }

type mismatch = {
  lifeguard : lifeguard;
  subject : string;
  details : string list;
}

let pp_mismatch ppf m =
  Format.fprintf ppf "@[<v2>[%s] %s%a@]"
    (lifeguard_to_string m.lifeguard)
    m.subject
    (fun ppf ds -> List.iter (Format.fprintf ppf "@,%s") ds)
    m.details

(* ------------------------------------------------------------------ *)
(* Canonical report fingerprints.  Everything observable goes in: the
   error list in order, totals, per-block statistics and SOS history.
   Two drivers agreeing on the fingerprint agree on the whole report. *)

let fp_stats pp_cell ppf grid =
  Array.iteri
    (fun t row ->
      Array.iteri (fun l cell -> Format.fprintf ppf "(%d,%d)%a " t l pp_cell cell) row)
    grid

let fp_addrcheck (r : AC.report) =
  Format.asprintf "flagged=%d/%d errors=[%a] sos=[%a] stats=[%a]"
    r.flagged_accesses r.total_accesses
    (fun ppf -> List.iter (Format.fprintf ppf "%a; " AC.pp_error))
    r.errors
    (fun ppf -> Array.iter (Format.fprintf ppf "%a; " IS.pp))
    r.sos
    (fp_stats (fun ppf (s : AC.block_stats) ->
         Format.fprintf ppf "%d/%d/%d" s.instrs s.mem_events s.flagged_events))
    r.block_stats

let fp_initcheck (r : IC.report) =
  Format.asprintf "flagged=%d/%d errors=[%a] sos=[%a]" r.flagged_reads
    r.total_reads
    (fun ppf -> List.iter (Format.fprintf ppf "%a; " IC.pp_error))
    r.errors
    (fun ppf -> Array.iter (Format.fprintf ppf "%a; " IS.pp))
    r.sos

let fp_taintcheck (r : TC.report) =
  Format.asprintf "errors=[%a] sos_tainted=[%a] stats=[%a]"
    (fun ppf -> List.iter (Format.fprintf ppf "%a; " TC.pp_error))
    r.errors
    (fun ppf ->
      Array.iter (fun xs ->
          List.iter (Format.fprintf ppf "%d,") xs;
          Format.fprintf ppf "; "))
    r.sos_tainted
    (fp_stats (fun ppf (s : TC.block_stats) ->
         Format.fprintf ppf "%d/%d/%d" s.instrs s.mem_events s.checks_resolved))
    r.block_stats

(* ------------------------------------------------------------------ *)
(* Driver equivalence: every driver's fingerprint must equal the
   sequential baseline's. *)

let driver_divergences lifeguard ~baseline runs =
  List.filter_map
    (fun (label, fp) ->
      if String.equal fp baseline then None
      else
        Some
          {
            lifeguard;
            subject = Printf.sprintf "driver %s diverges from sequential" label;
            details =
              [ "sequential: " ^ baseline; label ^ ":  " ^ fp ];
          })
    runs

let driver_label d p =
  Printf.sprintf "%s(%d)" (driver_to_string d) (Butterfly.Domain_pool.size p)

let state_suffix = function `Functional -> "" | `Flat -> "[flat]"
let wavefront_of = function Pooled -> false | Wavefront -> true

(* The driver × pool × backend matrix.  The functional sequential run is
   the baseline, so it is not an entry; the flat sequential run is — a
   backend bug with no driver involved must still be caught. *)
let matrix_of ~drivers ~states pools =
  List.concat_map
    (fun st ->
      let seq = if st = `Functional then [] else [ (st, None) ] in
      seq
      @ List.concat_map
          (fun d -> List.map (fun p -> (st, Some (d, p))) pools)
          drivers)
    states

let entry_label (st, dp) =
  match dp with
  | None -> "sequential" ^ state_suffix st
  | Some (d, p) -> driver_label d p ^ state_suffix st

let check_drivers ?(drivers = all_drivers) ?(states = all_backends) lifeguard
    pools g =
  let epochs = Grid.epochs g in
  (* Every parallel driver, on every supplied pool, under every fact-table
     backend, must reproduce the sequential functional baseline byte for
     byte. *)
  let matrix = matrix_of ~drivers ~states pools in
  let runs run_fp =
    List.map
      (fun ((st, dp) as e) ->
        ( entry_label e,
          match dp with
          | None -> run_fp ~state:st ~wavefront:false None
          | Some (d, p) -> run_fp ~state:st ~wavefront:(wavefront_of d) (Some p)
        ))
      matrix
  in
  match lifeguard with
  | Addrcheck ->
    let baseline = fp_addrcheck (AC.run epochs) in
    driver_divergences lifeguard ~baseline
      (runs (fun ~state ~wavefront pool ->
           fp_addrcheck (AC.run ~state ~wavefront ?pool epochs)))
  | Initcheck ->
    let baseline = fp_initcheck (IC.run epochs) in
    driver_divergences lifeguard ~baseline
      (runs (fun ~state ~wavefront pool ->
           fp_initcheck (IC.run ~state ~wavefront ?pool epochs)))
  | Racecheck ->
    (* The baseline here is the butterfly batch driver, and the
       independent brute-force reference [Racecheck_seq.check] joins the
       matrix as an extra entry — so a divergence between the windowed
       analysis and the reference semantics is caught alongside driver
       bugs. *)
    let baseline = RC.fingerprint (RC.run epochs) in
    driver_divergences lifeguard ~baseline
      (( "reference",
         RC.fingerprint (Lifeguards.Racecheck_seq.check epochs) )
      :: runs (fun ~state ~wavefront pool ->
             RC.fingerprint (RC.run ~state ~wavefront ?pool epochs)))
  | Taintcheck ->
    (* Per analysis variant: every parallel driver must agree with the
       sequential loop under every (chase, phase) setting. *)
    List.concat_map
      (fun (sequential, two_phase, vlabel) ->
        let baseline =
          fp_taintcheck (TC.run ~sequential ~two_phase epochs)
        in
        driver_divergences lifeguard ~baseline
          (List.map
             (fun ((st, dp) as e) ->
               ( Printf.sprintf "%s[%s]" (entry_label e) vlabel,
                 match dp with
                 | None ->
                   fp_taintcheck
                     (TC.run ~state:st ~sequential ~two_phase epochs)
                 | Some (d, p) ->
                   fp_taintcheck
                     (TC.run ~state:st ~sequential ~two_phase
                        ~wavefront:(wavefront_of d) ~pool:p epochs) ))
             matrix))
      [
        (true, true, "sc,two-phase");
        (false, true, "relaxed,two-phase");
        (true, false, "sc,one-phase");
      ]

(* ------------------------------------------------------------------ *)
(* Soundness vs the sequential oracle (Theorems 6.1, 6.2): replay valid
   orderings through the single-trace lifeguard and require the
   butterfly report to be a superset, per memory model. *)

let check_oracle config lifeguard g =
  let p = Grid.to_program g in
  List.filter_map
    (fun model ->
      let verdict =
        match lifeguard with
        | Addrcheck ->
          Lifeguards.Oracle.addrcheck_zero_false_negatives ~model
            ~cap:config.oracle_cap ~samples:config.oracle_samples
            ~seed:config.oracle_seed p
        | Initcheck ->
          Lifeguards.Oracle.initcheck_zero_false_negatives ~model
            ~cap:config.oracle_cap ~samples:config.oracle_samples
            ~seed:config.oracle_seed p
        | Taintcheck ->
          let sequential =
            Memmodel.Consistency.equal model Memmodel.Consistency.Sequential
          in
          Lifeguards.Oracle.taintcheck_zero_false_negatives ~model ~sequential
            ~cap:config.oracle_cap ~samples:config.oracle_samples
            ~seed:config.oracle_seed p
        | Racecheck
          when not
                 (Memmodel.Consistency.equal model
                    Memmodel.Consistency.Sequential) ->
          (* The race oracle's happens-before graph assumes program order
             is respected, so relaxed replays are not a sound ground
             truth; skip them (see {!Oracle.racecheck_zero_false_negatives}). *)
          {
            Lifeguards.Oracle.sound = true;
            orderings_checked = 0;
            exhaustive = true;
            missed = [];
          }
        | Racecheck ->
          Lifeguards.Oracle.racecheck_zero_false_negatives ~model
            ~cap:config.oracle_cap ~samples:config.oracle_samples
            ~seed:config.oracle_seed p
      in
      if verdict.sound then None
      else
        Some
          {
            lifeguard;
            subject =
              Printf.sprintf
                "unsound vs sequential oracle under %s (%d orderings%s): \
                 butterfly misses findings"
                (Memmodel.Consistency.to_string model)
                verdict.orderings_checked
                (if verdict.exhaustive then ", exhaustive" else ", sampled");
            details = verdict.missed;
          })
    config.models

let check ?(config = default_config) ?(pools = []) lifeguard g =
  check_drivers ~drivers:config.drivers ~states:config.states lifeguard pools g
  @ check_oracle config lifeguard g

let snapshot_tag = function
  | Addrcheck -> Recovery.Snapshot.Addrcheck
  | Initcheck -> Recovery.Snapshot.Initcheck
  | Taintcheck -> Recovery.Snapshot.Taintcheck
  | Racecheck -> Recovery.Snapshot.Racecheck

let check_recovery ?pool ?wavefront ?state ?(every = 1) ?crash_at ?(seed = 0)
    lifeguard g =
  let path = Filename.temp_file "bfly-ckpt" ".snap" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
  @@ fun () ->
  match
    Recovery.Crash_sim.run ?pool ?wavefront ?state ?crash_at ~seed ~every ~path
      (snapshot_tag lifeguard) (Grid.epochs g)
  with
  | Error m ->
    [ { lifeguard; subject = "crash-recovery: resume failed"; details = [ m ] } ]
  | Ok o when not o.Recovery.Crash_sim.equal ->
    [
      {
        lifeguard;
        subject =
          Printf.sprintf
            "crash-recovery: crash at epoch %d, resumed from snapshot at %d"
            o.Recovery.Crash_sim.crash_epoch o.Recovery.Crash_sim.resumed_from;
        details =
          [
            "straight: " ^ o.Recovery.Crash_sim.straight_fp;
            "resumed:  " ^ o.Recovery.Crash_sim.resumed_fp;
          ];
      };
    ]
  | Ok _ -> []
