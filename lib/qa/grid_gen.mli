(** Seeded grid generators for the differential fuzzer.

    Pure functions of a {!Random.State.t}: one integer seed reproduces a
    whole fuzzing campaign.  The shapes are deliberately adversarial for
    the butterfly drivers — ragged epoch counts (threads that heartbeat
    early, late, or never), empty blocks (heartbeats with no work, i.e.
    skewed heartbeat delivery), and tiny address universes so that
    cross-thread conflicts, metadata races and taint chains are dense. *)

type profile =
  | Alloc  (** malloc/free/access traffic — AddrCheck's vocabulary *)
  | Init  (** write-before-read traffic — InitCheck's vocabulary *)
  | Taint  (** sources, sanitizers, inheritance, sinks — TaintCheck's *)
  | Racy  (** lock/unlock/fork/join around shared accesses — RaceCheck's *)
  | Mixed  (** everything at once *)

val profile_to_string : profile -> string

type shape = {
  min_threads : int;
  max_threads : int;
  max_epochs : int;  (** per-thread block-list length, 1..max *)
  max_block : int;  (** instructions per block, 0..max *)
  n_addrs : int;  (** address universe [0, n_addrs) *)
  ragged : bool;
      (** threads independently draw their epoch count (0..epochs) and may
          emit empty blocks — the heartbeat-skew knob *)
}

val default_shape : shape
(** 1–3 threads, ≤3 epochs, ≤3 instructions per block, 4 addresses,
    ragged.  Small enough that the oracle's valid-ordering enumeration
    stays feasible on every generated grid. *)

val instr : profile -> n_addrs:int -> Random.State.t -> Tracing.Instr.t
val grid : ?shape:shape -> profile -> Random.State.t -> Grid.t
