type profile = Alloc | Init | Taint | Racy | Mixed

let profile_to_string = function
  | Alloc -> "alloc"
  | Init -> "init"
  | Taint -> "taint"
  | Racy -> "racy"
  | Mixed -> "mixed"

type shape = {
  min_threads : int;
  max_threads : int;
  max_epochs : int;
  max_block : int;
  n_addrs : int;
  ragged : bool;
}

let default_shape =
  {
    min_threads = 1;
    max_threads = 3;
    max_epochs = 3;
    max_block = 3;
    n_addrs = 4;
    ragged = true;
  }

(* Weighted choice: pick among [(weight, thunk)] pairs. *)
let frequency rng choices =
  let total = List.fold_left (fun n (w, _) -> n + w) 0 choices in
  let k = Random.State.int rng total in
  let rec pick k = function
    | [] -> assert false
    | (w, f) :: rest -> if k < w then f () else pick (k - w) rest
  in
  pick k choices

let addr ~n_addrs rng = Random.State.int rng n_addrs

(* Allocation traffic keeps bases and sizes tiny and overlapping so
   double-allocs, frees of live neighbours and metadata races actually
   happen within a three-epoch window. *)
let alloc_instr ~n_addrs rng : Tracing.Instr.t =
  let a () = addr ~n_addrs rng in
  let base () = 2 * Random.State.int rng (max 1 (n_addrs / 2)) in
  let size () = 1 + Random.State.int rng 2 in
  frequency rng
    [
      (3, fun () -> Tracing.Instr.Malloc { base = base (); size = size () });
      (3, fun () -> Tracing.Instr.Free { base = base (); size = size () });
      (3, fun () -> Tracing.Instr.Read (a ()));
      (2, fun () -> Tracing.Instr.Assign_const (a ()));
      (2, fun () -> Tracing.Instr.Assign_unop (a (), a ()));
      (1, fun () -> Tracing.Instr.Nop);
    ]

let init_instr ~n_addrs rng : Tracing.Instr.t =
  let a () = addr ~n_addrs rng in
  frequency rng
    [
      (3, fun () -> Tracing.Instr.Assign_const (a ()));
      (3, fun () -> Tracing.Instr.Assign_unop (a (), a ()));
      (2, fun () -> Tracing.Instr.Assign_binop (a (), a (), a ()));
      (3, fun () -> Tracing.Instr.Read (a ()));
      (1, fun () -> Tracing.Instr.Malloc { base = a (); size = 1 });
      (1, fun () -> Tracing.Instr.Free { base = a (); size = 1 });
      (1, fun () -> Tracing.Instr.Nop);
    ]

let taint_instr ~n_addrs rng : Tracing.Instr.t =
  let a () = addr ~n_addrs rng in
  frequency rng
    [
      (2, fun () -> Tracing.Instr.Taint_source (a ()));
      (2, fun () -> Tracing.Instr.Untaint (a ()));
      (2, fun () -> Tracing.Instr.Assign_const (a ()));
      (3, fun () -> Tracing.Instr.Assign_unop (a (), a ()));
      (3, fun () -> Tracing.Instr.Assign_binop (a (), a (), a ()));
      (2, fun () -> Tracing.Instr.Jump_via (a ()));
      (2, fun () -> Tracing.Instr.Syscall_arg (a ()));
      (1, fun () -> Tracing.Instr.Read (a ()));
      (1, fun () -> Tracing.Instr.Nop);
    ]

(* Lock-heavy traffic: shared reads and writes racing over a tiny address
   universe, guarded (or deliberately not) by at most two locks, with
   occasional fork/join edges.  Fork/join targets sometimes exceed the
   actual thread count — RaceCheck must treat those as inert, and the
   fuzzer makes sure it does. *)
let racy_instr ~n_addrs rng : Tracing.Instr.t =
  let a () = addr ~n_addrs rng in
  let lock () = Random.State.int rng 2 in
  let tid () = Random.State.int rng 3 in
  frequency rng
    [
      (3, fun () -> Tracing.Instr.Assign_const (a ()));
      (2, fun () -> Tracing.Instr.Assign_unop (a (), a ()));
      (3, fun () -> Tracing.Instr.Read (a ()));
      (3, fun () -> Tracing.Instr.Lock (lock ()));
      (3, fun () -> Tracing.Instr.Unlock (lock ()));
      (1, fun () -> Tracing.Instr.Fork (tid ()));
      (1, fun () -> Tracing.Instr.Join (tid ()));
      (1, fun () -> Tracing.Instr.Nop);
    ]

let instr profile ~n_addrs rng =
  match profile with
  | Alloc -> alloc_instr ~n_addrs rng
  | Init -> init_instr ~n_addrs rng
  | Taint -> taint_instr ~n_addrs rng
  | Racy -> racy_instr ~n_addrs rng
  | Mixed ->
    frequency rng
      [
        (1, fun () -> alloc_instr ~n_addrs rng);
        (1, fun () -> init_instr ~n_addrs rng);
        (1, fun () -> taint_instr ~n_addrs rng);
        (1, fun () -> racy_instr ~n_addrs rng);
      ]

let grid ?(shape = default_shape) profile rng : Grid.t =
  let threads =
    shape.min_threads
    + Random.State.int rng (shape.max_threads - shape.min_threads + 1)
  in
  let epochs = 1 + Random.State.int rng shape.max_epochs in
  let block () =
    (* Bias towards empty blocks under raggedness: a thread that receives
       a heartbeat without having executed anything since the last one. *)
    let len =
      if shape.ragged && Random.State.int rng 5 = 0 then 0
      else Random.State.int rng (shape.max_block + 1)
    in
    Array.init len (fun _ -> instr profile ~n_addrs:shape.n_addrs rng)
  in
  Array.init threads (fun _ ->
      let mine =
        if shape.ragged then Random.State.int rng (epochs + 1) else epochs
      in
      List.init mine (fun _ -> block ()))
