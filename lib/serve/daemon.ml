module Snapshot = Recovery.Snapshot

type config = {
  socket : string;
  domains : int option;
  state_dir : string option;
  checkpoint_every : int option;
  evict_idle_after : int option;
  policy : Policy.t;
}

let config ~socket ?domains ?state_dir ?checkpoint_every ?evict_idle_after
    ?(policy = Policy.default) () =
  (match checkpoint_every with
  | Some n when n < 1 -> invalid_arg "Daemon.config: checkpoint_every must be >= 1"
  | _ -> ());
  (match evict_idle_after with
  | Some n when n < 1 -> invalid_arg "Daemon.config: evict_idle_after must be >= 1"
  | _ -> ());
  if (checkpoint_every <> None || evict_idle_after <> None) && state_dir = None
  then invalid_arg "Daemon.config: checkpointing and eviction need state_dir";
  { socket; domains; state_dir; checkpoint_every; evict_idle_after; policy }

(* Telemetry: the daemon's own counters, plus everything the engines and
   recovery layer emit under the installed sink. *)
let m_accepted = Obs.Counter.make "serve.accepted"
let m_frames = Obs.Counter.make "serve.frames"
let m_rows = Obs.Counter.make "serve.rows"
let m_reports = Obs.Counter.make "serve.reports"
let m_errors = Obs.Counter.make "serve.errors"
let m_evictions = Obs.Counter.make "serve.evictions"
let g_sessions = Obs.Gauge.make "serve.sessions"

type conn = {
  fd : Unix.file_descr;
  reader : Wire.Reader.t;
  buf : Bytes.t;
  mutable tenant : string option;  (* set once HELLO is accepted *)
  mutable open_ : bool;
}

type t = {
  cfg : config;
  pool : Butterfly.Domain_pool.t option;
  listen_fd : Unix.file_descr;
  mutable conns : conn list;
  sessions : Session.t Table.t;
  attached : (string, conn) Hashtbl.t;
  idle : (string, int) Hashtbl.t;  (* detached tenants: ticks since activity *)
  mem : Obs.Sink.t;  (* status endpoint's registry view *)
}

let close_fd fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* Blocking write of a whole frame; SO_SNDTIMEO bounds a stuck client,
   and any failure just closes the connection — the daemon never lets
   one tenant's socket wedge the loop. *)
let send t conn frame =
  if conn.open_ then
    try
      let s = Wire.encode frame in
      let n = String.length s in
      let b = Bytes.unsafe_of_string s in
      let off = ref 0 in
      while !off < n do
        off := !off + Unix.write conn.fd b !off (n - !off)
      done;
      true
    with Unix.Unix_error _ ->
      conn.open_ <- false;
      close_fd conn.fd;
      t.conns <- List.filter (fun c -> c != conn) t.conns;
      (match conn.tenant with
      | Some tenant ->
        Hashtbl.remove t.attached tenant;
        if Table.mem t.sessions tenant then Hashtbl.replace t.idle tenant 0
      | None -> ());
      false
  else false

let detach t conn =
  conn.open_ <- false;
  close_fd conn.fd;
  t.conns <- List.filter (fun c -> c != conn) t.conns;
  match conn.tenant with
  | Some tenant ->
    Hashtbl.remove t.attached tenant;
    (* The session survives the disconnect; it keeps draining and can be
       reattached, evicted, or idle-collected. *)
    if Table.mem t.sessions tenant then Hashtbl.replace t.idle tenant 0
  | None -> ()

(* Connection-level rejection: the session (if any) is untouched. *)
let reject t conn msg =
  Obs.Counter.incr m_errors;
  ignore (send t conn (Wire.Error msg));
  detach t conn

let drop_session t tenant =
  Table.remove t.sessions tenant;
  Hashtbl.remove t.idle tenant;
  Hashtbl.remove t.attached tenant;
  Obs.Gauge.set g_sessions (float_of_int (Table.live t.sessions))

(* Session-level failure: a corrupt stream leaves the engine's frontier
   unknowable, so the whole session goes with the connection.  Other
   tenants are untouched — the per-session fuzz battery pins this. *)
let fail_session t conn msg =
  (match conn.tenant with Some tn -> drop_session t tn | None -> ());
  reject t conn msg

let finish_session t conn tenant session =
  let report = Session.report session in
  Obs.Counter.incr m_reports;
  ignore (send t conn (Wire.Report report));
  detach t conn;
  drop_session t tenant

let session_of t conn =
  match conn.tenant with
  | None -> None
  | Some tenant -> Table.find t.sessions tenant

let status_json t =
  let sessions =
    Table.fold t.sessions
      (fun acc tenant s ->
        let extra =
          [
            ("connected", Obs.Json.Bool (Hashtbl.mem t.attached tenant));
            ("idle",
             Obs.Json.Int
               (Option.value (Hashtbl.find_opt t.idle tenant) ~default:0));
          ]
        in
        (match Session.stats_json s with
        | Obs.Json.Obj fields -> Obs.Json.Obj (fields @ extra)
        | j -> j)
        :: acc)
      []
    |> List.rev
  in
  Obs.Json.to_string
    (Obs.Json.Obj
       [
         ("live", Obs.Json.Int (Table.live t.sessions));
         ("sessions", Obs.Json.List sessions);
         ("prometheus",
          Obs.Json.String (Obs.Snapshot.to_prometheus (Obs.Sink.snapshot t.mem)));
       ])

let evict_session t tenant session =
  match t.cfg.state_dir with
  | None -> false
  | Some dir -> (
    match Session.evict session ~dir with
    | Ok _bytes ->
      Obs.Counter.incr m_evictions;
      drop_session t tenant;
      true
    | Error _ -> false)

(* Make room for one more session, per policy: evict the longest-idle
   detached session, or refuse. *)
let admit t =
  let live = Table.live t.sessions in
  let candidates =
    Table.fold t.sessions
      (fun acc tenant _ ->
        {
          Policy.key = tenant;
          detached = not (Hashtbl.mem t.attached tenant);
          idle = Option.value (Hashtbl.find_opt t.idle tenant) ~default:0;
        }
        :: acc)
      []
  in
  match Policy.evictee t.cfg.policy ~live candidates with
  | None when live < Policy.max_sessions t.cfg.policy -> Ok ()
  | None -> Error (Printf.sprintf "daemon at capacity: %d sessions" live)
  | Some key -> (
    match Table.find t.sessions key with
    | Some s when evict_session t key s -> Ok ()
    | _ -> Error (Printf.sprintf "daemon at capacity: %d sessions" live))

let handle_hello t conn (h : Wire.hello) =
  match conn.tenant with
  | Some _ -> reject t conn "bad stream: duplicate HELLO"
  | None -> (
    match Table.find t.sessions h.tenant with
    | Some s ->
      if Hashtbl.mem t.attached h.tenant then
        reject t conn (Printf.sprintf "tenant %s already connected" h.tenant)
      else if Session.lifeguard s <> h.lifeguard then
        reject t conn
          (Printf.sprintf "tenant %s has a %s session, not %s" h.tenant
             (Snapshot.lifeguard_to_string (Session.lifeguard s))
             (Snapshot.lifeguard_to_string h.lifeguard))
      else if Session.threads s <> h.threads then
        reject t conn
          (Printf.sprintf "session has %d threads, hello has %d"
             (Session.threads s) h.threads)
      else begin
        conn.tenant <- Some h.tenant;
        Hashtbl.replace t.attached h.tenant conn;
        Hashtbl.remove t.idle h.tenant;
        if
          send t conn
            (Wire.Hello_ok { resumed_from = Session.frontier s })
          && Session.finished s
        then
          (* The client vanished between FIN and REPORT last time; the
             cached report is still owed. *)
          finish_session t conn h.tenant s
      end
    | None -> (
      match admit t with
      | Error m -> reject t conn m
      | Ok () -> (
        match
          Session.create ?pool:t.pool ?state_dir:t.cfg.state_dir h
        with
        | Error m -> reject t conn m
        | Ok s ->
          conn.tenant <- Some h.tenant;
          Table.add t.sessions h.tenant s;
          Hashtbl.replace t.attached h.tenant conn;
          Obs.Gauge.set g_sessions (float_of_int (Table.live t.sessions));
          ignore
            (send t conn
               (Wire.Hello_ok { resumed_from = Session.frontier s })))))

let handle_frame t conn frame =
  Obs.Counter.incr m_frames;
  match frame with
  | Wire.Hello h -> handle_hello t conn h
  | Wire.Status -> ignore (send t conn (Wire.Status_ok (status_json t)))
  | Wire.Data chunk -> (
    match session_of t conn with
    | None -> reject t conn "bad stream: DATA before HELLO"
    | Some s -> (
      match Session.enqueue s chunk with
      | Ok rows -> Obs.Counter.add m_rows rows
      | Error m -> fail_session t conn m))
  | Wire.Fin -> (
    match session_of t conn with
    | None -> reject t conn "bad stream: FIN before HELLO"
    | Some s ->
      Session.fin s;
      (* Short streams may be fully fed already; don't make the client
         wait a rotation for its report. *)
      if Session.finished s then
        finish_session t conn (Option.get conn.tenant) s)
  | Wire.Hello_ok _ | Wire.Report _ | Wire.Status_ok _ | Wire.Error _ ->
    reject t conn "bad stream: unexpected frame"

let throttled t conn =
  match session_of t conn with
  | None -> false
  | Some s -> Policy.throttled t.cfg.policy ~queued:(Session.queued s)

(* Decode and dispatch every complete frame the reader holds, stopping
   at a partial frame or once the session hits its queue bound (the
   leftover stays buffered until the rotation drains the queue). *)
let rec drain_frames t conn =
  if conn.open_ && not (throttled t conn) then
    match Wire.Reader.next conn.reader with
    | Ok None -> ()
    | Ok (Some frame) ->
      handle_frame t conn frame;
      drain_frames t conn
    | Error m -> fail_session t conn m

let read_conn t conn =
  match Unix.read conn.fd conn.buf 0 (Bytes.length conn.buf) with
  | 0 -> detach t conn
  | n ->
    Wire.Reader.feed conn.reader (Bytes.unsafe_to_string conn.buf) ~pos:0
      ~len:n;
    drain_frames t conn
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  | exception Unix.Unix_error _ -> detach t conn

let accept_conns t =
  let rec go () =
    match Unix.accept t.listen_fd with
    | fd, _ ->
      (try Unix.setsockopt_float fd SO_SNDTIMEO 5.0
       with Unix.Unix_error _ -> ());
      Obs.Counter.incr m_accepted;
      t.conns <-
        t.conns
        @ [
            {
              fd;
              reader = Wire.Reader.create ();
              buf = Bytes.create 65536;
              tenant = None;
              open_ = true;
            };
          ];
      go ()
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  in
  go ()

let rotate t =
  ignore
    (Table.tick t.sessions (fun tenant s ->
         let worked = Session.step s in
         if worked then begin
           (match (t.cfg.checkpoint_every, t.cfg.state_dir) with
           | Some every, Some dir when Session.fed s mod every = 0 ->
             (* Periodic checkpoint at the sealed frontier: a killed
                daemon loses at most [every - 1] fed epochs per tenant,
                and reconnecting clients resume from here. *)
             (match Session.checkpoint s ~dir with
             | Ok _ -> ()
             | Error _ -> ())
           | _ -> ());
           match Hashtbl.find_opt t.attached tenant with
           | Some conn ->
             if Session.finished s then finish_session t conn tenant s
             (* Feeding may have unthrottled the session; pick the
                buffered frames back up. *)
             else drain_frames t conn
           | None -> Hashtbl.replace t.idle tenant 0
         end;
         worked))

let collect_idle t =
  match (t.cfg.evict_idle_after, t.cfg.state_dir) with
  | Some after, Some _ ->
    let expired =
      Hashtbl.fold
        (fun tenant ticks acc ->
          if ticks + 1 >= after then tenant :: acc
          else begin
            Hashtbl.replace t.idle tenant (ticks + 1);
            acc
          end)
        t.idle []
    in
    List.iter
      (fun tenant ->
        match Table.find t.sessions tenant with
        | Some s when Hashtbl.mem t.attached tenant = false ->
          ignore (evict_session t tenant s)
        | _ -> ())
      expired
  | _ ->
    (* Still age the counters so oversubscription eviction prefers the
       longest-detached session. *)
    Hashtbl.iter (fun tenant ticks -> Hashtbl.replace t.idle tenant (ticks + 1))
      (Hashtbl.copy t.idle)

let work_pending t =
  Table.fold t.sessions (fun acc _ s -> acc || Session.queued s > 0) false
  || List.exists (fun c -> Wire.Reader.buffered c.reader > 0) t.conns

let shutdown t ~evict =
  if evict then
    List.iter
      (fun tenant ->
        match Table.find t.sessions tenant with
        | Some s -> ignore (evict_session t tenant s)
        | None -> ())
      (Table.keys t.sessions);
  List.iter (fun c -> close_fd c.fd) t.conns;
  close_fd t.listen_fd;
  if not evict then ()
  else if Sys.file_exists t.cfg.socket then Sys.remove t.cfg.socket

let rec loop stop t =
  match stop () with
  | `Abort -> shutdown t ~evict:false
  | `Quit -> shutdown t ~evict:true
  | `Run ->
    let read_fds =
      t.listen_fd
      :: List.filter_map
           (fun c -> if throttled t c then None else Some c.fd)
           t.conns
    in
    let timeout = if work_pending t then 0.0 else 0.02 in
    let ready, _, _ =
      match Unix.select read_fds [] [] timeout with
      | r -> r
      | exception Unix.Unix_error (EINTR, _, _) -> ([], [], [])
    in
    if List.mem t.listen_fd ready then accept_conns t;
    List.iter
      (fun c -> if c.open_ && List.mem c.fd ready then read_conn t c)
      t.conns;
    rotate t;
    collect_idle t;
    loop stop t

let run ?(stop = fun () -> `Run) cfg =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with
  | Invalid_argument _ | Sys_error _ -> ());
  let with_pool f =
    match cfg.domains with
    | None -> f None
    | Some n ->
      Butterfly.Domain_pool.with_pool ~name:"serve" ~domains:n (fun p ->
          f (Some p))
  in
  with_pool @@ fun pool ->
  (match cfg.state_dir with
  | Some dir when not (Sys.file_exists dir) -> Unix.mkdir dir 0o755
  | Some _ | None -> ());
  let mem = Obs.Sink.memory () in
  Obs.with_sink (Obs.Sink.tee (Obs.sink ()) mem) @@ fun () ->
  if Sys.file_exists cfg.socket then Sys.remove cfg.socket;
  let listen_fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
  (try
     Unix.bind listen_fd (ADDR_UNIX cfg.socket);
     Unix.listen listen_fd 64;
     Unix.set_nonblock listen_fd
   with e ->
     close_fd listen_fd;
     raise e);
  let t =
    {
      cfg;
      pool;
      listen_fd;
      conns = [];
      sessions = Table.create ();
      attached = Hashtbl.create 16;
      idle = Hashtbl.create 16;
      mem;
    }
  in
  loop stop t
