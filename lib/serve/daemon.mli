(** The multi-tenant streaming monitor daemon.

    One Unix-domain listener, many concurrent {!Wire} streams, one
    analysis session per tenant — all multiplexed over a single
    coordinating loop.  The single loop is load-bearing: every engine
    submission happens from this one domain, which is exactly the
    single-writer discipline {!Butterfly.Domain_pool} requires, so K
    tenants can share one pool (each session's pooled or wavefront
    scheduler fans out from here) without a lock anywhere in the feeding
    path.

    Per tick the loop: selects on the listener and every unthrottled
    connection, reads and decodes what arrived, feeds {e one} epoch row
    per session in round-robin rotation ({!Table.tick}), checkpoints
    sessions crossing a [checkpoint_every] frontier, and ages/evicts
    idle detached sessions.  Backpressure is the read set: a session at
    its queue bound simply stops being read until the rotation drains
    it, bounding every tenant's memory to [max_queued] rows.

    Fault containment: a malformed frame or chunk ends {e that} tenant's
    session with one stable [ERROR] frame; other tenants never notice
    (the frame-protocol fuzz battery pins this). *)

type config = {
  socket : string;  (** Unix-domain socket path; replaced if present *)
  domains : int option;
      (** shared worker pool; required by pooled/wavefront hellos *)
  state_dir : string option;  (** session snapshots (eviction, crashes) *)
  checkpoint_every : int option;  (** epochs between periodic snapshots *)
  evict_idle_after : int option;
      (** scheduler ticks a detached session survives before eviction *)
  policy : Policy.t;
}

val config :
  socket:string ->
  ?domains:int ->
  ?state_dir:string ->
  ?checkpoint_every:int ->
  ?evict_idle_after:int ->
  ?policy:Policy.t ->
  unit ->
  config
(** Raises [Invalid_argument] on non-positive intervals, or on
    checkpointing/eviction options without a [state_dir]. *)

val run : ?stop:(unit -> [ `Run | `Quit | `Abort ]) -> config -> unit
(** Serve until [stop] says otherwise (checked once per tick).  [`Quit]
    is a clean shutdown: unreported sessions are evicted to [state_dir]
    snapshots and the socket file removed.  [`Abort] simulates a crash:
    file descriptors close, nothing is flushed — surviving state is
    whatever the periodic checkpoints left on disk, which is what the
    crash/reconnect battery drives.  Installs a memory {!Obs} sink
    (teed with the caller's) that backs the [STATUS] endpoint's
    Prometheus rendering. *)
