(** Admission, backpressure and eviction rules.

    Pure decisions over session counts — the daemon supplies the state,
    the policy says what to do, and the unit tests in [test_serve]
    exercise the rules without a socket in sight.

    {ul
    {- {e Backpressure}: a session whose unfed-row queue reaches
       [max_queued] is throttled — the daemon stops reading its
       connection until the rotation drains the queue below the limit,
       so one fast client cannot buffer unboundedly.}
    {- {e Admission/eviction}: at most [max_sessions] live sessions.  A
       HELLO beyond that evicts the longest-idle {e detached} session to
       its snapshot (reviving transparently on reconnect); if every live
       session has a connection, the HELLO is rejected.}} *)

type t

val v : max_sessions:int -> max_queued:int -> t
(** Raises [Invalid_argument] unless both are >= 1. *)

val default : t
(** 64 sessions, 64 queued rows each. *)

val max_sessions : t -> int
val max_queued : t -> int

val throttled : t -> queued:int -> bool
(** Stop reading this session's connection? *)

type candidate = { key : string; detached : bool; idle : int }
(** [idle] in scheduler ticks since the session last fed a row or had a
    connection. *)

val evictee : t -> live:int -> candidate list -> string option
(** With [live] sessions and one more asking to be admitted: the key to
    evict, or [None] when admission needs no eviction (capacity left) or
    no eviction is possible (every candidate connected).  Deterministic:
    longest-idle detached candidate, ties on key. *)
