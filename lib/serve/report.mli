(** Canonical JSON rendering of lifeguard reports.

    One line per report, identical whether produced by the batch CLI's
    [--json] flag or a daemon's [REPORT] frame — the multi-tenant
    differential battery compares the two byte-for-byte, so both paths
    must go through these functions.  [checked] counts the lifeguard's
    unit of work (memory events, reads, resolved taint checks,
    conflicting pairs); [flagged] the errors it raised. *)

val addrcheck : Lifeguards.Addrcheck.report -> string
val initcheck : Lifeguards.Initcheck.report -> string
val taintcheck : Lifeguards.Taintcheck.report -> string
val racecheck : Lifeguards.Racecheck.report -> string

(** {2 Pieces}

    Exposed for the CLI, which also embeds error objects in its
    [--stats=json] stream. *)

val json_of_instr_id : Butterfly.Instr_id.t -> Obs.Json.t
val json_of_intervals : Butterfly.Interval_set.t -> Obs.Json.t

val lifeguard_json :
  lifeguard:string ->
  checked:int ->
  flagged:int ->
  errors:Obs.Json.t list ->
  Obs.Json.t

val json_of_addrcheck_error : Lifeguards.Addrcheck.error -> Obs.Json.t
val json_of_initcheck_error : Lifeguards.Initcheck.error -> Obs.Json.t
val json_of_taintcheck_error : Lifeguards.Taintcheck.error -> Obs.Json.t
val json_of_race : Lifeguards.Racecheck.race -> Obs.Json.t
