module Runner = Recovery.Runner
module Snapshot = Recovery.Snapshot
module Cursor = Tracing.Trace_codec.Cursor

(* The engine and its typed report renderer, packed together so the
   report type never escapes.  [Runner.ops_of]'s [packed] cannot carry
   the renderer — hence the typed builders. *)
type packed =
  | E : ('s, 'r) Runner.ops * 's * ('r -> string) -> packed

type t = {
  tenant : string;
  lifeguard : Snapshot.lifeguard;
  driver : [ `Sequential | `Pooled | `Wavefront ];
  state : [ `Functional | `Flat ];
  threads : int;
  engine : packed;
  rows : Tracing.Instr.t array array Queue.t;
  mutable fin : bool;
  mutable report : string option;
}

let all_lifeguards =
  [ Snapshot.Addrcheck; Snapshot.Initcheck; Snapshot.Taintcheck;
    Snapshot.Racecheck ]

let fresh (h : Wire.hello) pool =
  let wavefront = h.driver = `Wavefront in
  let mk ops render = E (ops, ops.Runner.create ~threads:h.threads, render) in
  match h.lifeguard with
  | Snapshot.Addrcheck ->
    mk (Runner.addr_ops ?pool ~wavefront ~state:h.state ()) Report.addrcheck
  | Snapshot.Initcheck ->
    mk (Runner.init_ops ?pool ~wavefront ~state:h.state ()) Report.initcheck
  | Snapshot.Taintcheck ->
    mk
      (Runner.taint_ops ?pool ~sequential:(not h.relaxed) ~wavefront
         ~state:h.state ())
      Report.taintcheck
  | Snapshot.Racecheck ->
    mk (Runner.race_ops ?pool ~wavefront ~state:h.state ()) Report.racecheck

let revive (h : Wire.hello) pool ~path =
  let wavefront = h.driver = `Wavefront in
  let load (type s r) (ops : (s, r) Runner.ops) render =
    match Snapshot.read_file ~path with
    | Error m -> Error m
    | Ok (meta, payload) ->
      if meta.Snapshot.lifeguard <> ops.Runner.tag then
        Error
          (Printf.sprintf "checkpoint is for %s, not %s"
             (Snapshot.lifeguard_to_string meta.Snapshot.lifeguard)
             (Snapshot.lifeguard_to_string ops.Runner.tag))
      else if meta.Snapshot.threads <> h.threads then
        Error
          (Printf.sprintf "checkpoint has %d threads, trace has %d"
             meta.Snapshot.threads h.threads)
      else (
        match ops.Runner.dec payload with
        | Error m -> Error ("corrupt checkpoint payload: " ^ m)
        | Ok st ->
          if ops.Runner.fed st <> meta.Snapshot.next_epoch then
            Error
              "corrupt checkpoint payload: header and payload disagree on epoch"
          else Ok (E (ops, st, render)))
  in
  match h.lifeguard with
  | Snapshot.Addrcheck ->
    load (Runner.addr_ops ?pool ~wavefront ~state:h.state ()) Report.addrcheck
  | Snapshot.Initcheck ->
    load (Runner.init_ops ?pool ~wavefront ~state:h.state ()) Report.initcheck
  | Snapshot.Taintcheck ->
    load
      (Runner.taint_ops ?pool ~sequential:(not h.relaxed) ~wavefront
         ~state:h.state ())
      Report.taintcheck
  | Snapshot.Racecheck ->
    load (Runner.race_ops ?pool ~wavefront ~state:h.state ()) Report.racecheck

let create ?pool ?state_dir (h : Wire.hello) =
  if not (Snapshot.valid_tenant h.tenant) then
    Error (Printf.sprintf "bad hello: invalid tenant id %S" h.tenant)
  else if h.threads < 1 then Error "bad hello: threads must be >= 1"
  else if h.driver <> `Sequential && pool = None then
    Error "bad hello: driver needs a daemon started with --domains"
  else
    let pool = if h.driver = `Sequential then None else pool in
    let wrap engine =
      {
        tenant = h.tenant;
        lifeguard = h.lifeguard;
        driver = h.driver;
        state = h.state;
        threads = h.threads;
        engine;
        rows = Queue.create ();
        fin = false;
        report = None;
      }
    in
    match state_dir with
    | None -> Ok (wrap (fresh h pool))
    | Some dir ->
      let snap = Snapshot.session_path ~dir ~tenant:h.tenant h.lifeguard in
      if Sys.file_exists snap then (
        match revive h pool ~path:snap with
        | Error m -> Error m
        | Ok engine -> Ok (wrap engine))
      else (
        (* No snapshot under this lifeguard — but a snapshot under
           another one means this tenant's stream is mid-flight with a
           different analysis, and silently starting fresh would split
           the session.  Reject; the stale file must be removed (or the
           right lifeguard requested) first. *)
        match
          List.find_opt
            (fun lg ->
              lg <> h.lifeguard
              && Sys.file_exists (Snapshot.session_path ~dir ~tenant:h.tenant lg))
            all_lifeguards
        with
        | Some other ->
          Error
            (Printf.sprintf "tenant %s has a %s session on disk, not %s"
               h.tenant
               (Snapshot.lifeguard_to_string other)
               (Snapshot.lifeguard_to_string h.lifeguard))
        | None -> Ok (wrap (fresh h pool)))

let tenant t = t.tenant
let lifeguard t = t.lifeguard
let threads t = t.threads
let fed t = match t.engine with E (ops, st, _) -> ops.Runner.fed st
let queued t = Queue.length t.rows
let frontier t = fed t + queued t
let fin t = t.fin <- true
let fin_received t = t.fin
let finished t = t.fin && Queue.is_empty t.rows

let enqueue t chunk =
  if t.fin then Error "bad stream: DATA after FIN"
  else
    match Cursor.of_string chunk with
    | Error m -> Error ("bad trace chunk: " ^ m)
    | Ok c ->
      if Cursor.threads c <> t.threads then
        Error
          (Printf.sprintf "bad trace chunk: %d threads, session has %d"
             (Cursor.threads c) t.threads)
      else begin
        let n = ref 0 in
        Cursor.iter_rows c (fun row ->
            incr n;
            Queue.add row t.rows);
        Ok !n
      end

let step t =
  match Queue.take_opt t.rows with
  | None -> false
  | Some row ->
    (match t.engine with
    | E (ops, st, _) ->
      Obs.Scope.with_scope ~tenant:t.tenant ~epoch:(ops.Runner.fed st)
        ~phase:"serve" (fun () -> ops.Runner.feed st row));
    true

let drain t = while step t do () done

let report t =
  match t.report with
  | Some r -> r
  | None ->
    drain t;
    let r =
      match t.engine with
      | E (ops, st, render) ->
        Obs.Scope.with_scope ~tenant:t.tenant ~phase:"serve" (fun () ->
            render (ops.Runner.finish st))
    in
    t.report <- Some r;
    r

let checkpoint t ~dir =
  if t.report <> None then Error "cannot checkpoint: session already reported"
  else
    match t.engine with
    | E (ops, st, _) ->
      Obs.Scope.with_scope ~tenant:t.tenant (fun () ->
          Ok
            (Runner.write_checkpoint ops
               ~path:(Snapshot.session_path ~dir ~tenant:t.tenant t.lifeguard)
               ~threads:t.threads st))

let evict t ~dir =
  if t.report <> None then Error "cannot evict: session already reported"
  else begin
    drain t;
    checkpoint t ~dir
  end

let driver_string = function
  | `Sequential -> "sequential"
  | `Pooled -> "pooled"
  | `Wavefront -> "wavefront"

let state_string = function `Functional -> "functional" | `Flat -> "flat"

let stats_json t =
  Obs.Json.Obj
    [
      ("tenant", Obs.Json.String t.tenant);
      ("lifeguard",
       Obs.Json.String (Snapshot.lifeguard_to_string t.lifeguard));
      ("driver", Obs.Json.String (driver_string t.driver));
      ("state", Obs.Json.String (state_string t.state));
      ("threads", Obs.Json.Int t.threads);
      ("fed", Obs.Json.Int (fed t));
      ("queued", Obs.Json.Int (queued t));
      ("fin", Obs.Json.Bool t.fin);
      ("reported", Obs.Json.Bool (t.report <> None));
    ]
