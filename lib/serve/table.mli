(** Keyed session table with a round-robin fairness rotation.

    The daemon keeps one entry per tenant.  {!tick} is the fairness
    primitive: it visits every entry once, starting one position later
    each call, so each tenant gets the first slot equally often — with
    the daemon feeding one epoch per session per tick, K tenants share
    the feeding domain within one epoch of each other regardless of who
    connected first or streams fastest (DESIGN §17 gives the argument). *)

type 'a t

val create : unit -> 'a t

val add : 'a t -> string -> 'a -> unit
(** Raises [Invalid_argument] on a duplicate key. *)

val remove : 'a t -> string -> unit
(** No-op when absent. *)

val find : 'a t -> string -> 'a option
val mem : 'a t -> string -> bool
val live : 'a t -> int

val iter : 'a t -> (string -> 'a -> unit) -> unit
(** Insertion order. *)

val fold : 'a t -> ('b -> string -> 'a -> 'b) -> 'b -> 'b

val keys : 'a t -> string list
(** Insertion order. *)

val tick : 'a t -> (string -> 'a -> bool) -> int
(** One rotation: apply the callback to every entry, starting one
    position past the previous tick's start; returns how many callbacks
    reported work done.  The callback may remove entries (including the
    one being visited); entries added during a tick are visited from the
    next tick on. *)
