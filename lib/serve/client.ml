let chunk_of_row row =
  Tracing.Trace_codec.encode_binary
    (Tracing.Program.of_instrs (Array.to_list (Array.map Array.to_list row)))

let ignore_sigpipe () =
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with
  | Invalid_argument _ | Sys_error _ -> ()

let connect ?(retries = 100) ~socket () =
  ignore_sigpipe ();
  let rec go n =
    let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
    match Unix.connect fd (ADDR_UNIX socket) with
    | () -> Ok fd
    | exception Unix.Unix_error ((ENOENT | ECONNREFUSED | EAGAIN), _, _)
      when n > 0 ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Unix.sleepf 0.02;
      go (n - 1)
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error
        (Printf.sprintf "cannot connect to %s: %s" socket
           (Unix.error_message e))
  in
  match go retries with
  | Ok _ as ok -> ok
  | Error _ as e -> e

let write_all ?(chunk = max_int) fd s =
  let n = String.length s in
  let b = Bytes.unsafe_of_string s in
  let off = ref 0 in
  try
    while !off < n do
      let len = min chunk (n - !off) in
      match Unix.write fd b !off len with
      | written -> off := !off + written
      | exception Unix.Unix_error (EINTR, _, _) -> ()
    done;
    Ok ()
  with Unix.Unix_error (e, _, _) ->
    Error ("connection lost: " ^ Unix.error_message e)

let send ?chunk fd frame = write_all ?chunk fd (Wire.encode frame)

let read_frame fd reader buf =
  let rec go () =
    match Wire.Reader.next reader with
    | Ok (Some f) -> Ok f
    | Error m -> Error m
    | Ok None -> (
      match Unix.read fd buf 0 (Bytes.length buf) with
      | 0 -> Error "connection closed by daemon"
      | n ->
        Wire.Reader.feed reader (Bytes.unsafe_to_string buf) ~pos:0 ~len:n;
        go ()
      | exception Unix.Unix_error (EINTR, _, _) -> go ()
      | exception Unix.Unix_error (e, _, _) ->
        Error ("connection lost: " ^ Unix.error_message e))
  in
  go ()

let with_conn ~socket ?retries f =
  match connect ?retries ~socket () with
  | Error m -> Error m
  | Ok fd ->
    let r =
      try f fd
      with e ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        raise e
    in
    (try Unix.close fd with Unix.Unix_error _ -> ());
    r

let ( let* ) = Result.bind

let run_tenant ~socket ?retries ?write_chunk ~hello rows =
  with_conn ~socket ?retries @@ fun fd ->
  let reader = Wire.Reader.create () in
  let buf = Bytes.create 65536 in
  let* () = send ?chunk:write_chunk fd (Wire.Hello hello) in
  let* resumed_from =
    match read_frame fd reader buf with
    | Ok (Wire.Hello_ok { resumed_from }) -> Ok resumed_from
    | Ok (Wire.Error m) -> Error m
    | Ok f -> Error (Format.asprintf "unexpected frame: %a" Wire.pp f)
    | Error m -> Error m
  in
  if resumed_from > Array.length rows then
    Error
      (Printf.sprintf "daemon is ahead of the trace: %d epochs fed, trace has %d"
         resumed_from (Array.length rows))
  else
    let rec feed l =
      if l >= Array.length rows then Ok ()
      else
        let* () =
          send ?chunk:write_chunk fd (Wire.Data (chunk_of_row rows.(l)))
        in
        feed (l + 1)
    in
    let* () = feed resumed_from in
    let* () = send ?chunk:write_chunk fd Wire.Fin in
    match read_frame fd reader buf with
    | Ok (Wire.Report r) -> Ok (resumed_from, r)
    | Ok (Wire.Error m) -> Error m
    | Ok f -> Error (Format.asprintf "unexpected frame: %a" Wire.pp f)
    | Error m -> Error m

let status ~socket ?retries () =
  with_conn ~socket ?retries @@ fun fd ->
  let reader = Wire.Reader.create () in
  let buf = Bytes.create 65536 in
  let* () = send fd Wire.Status in
  match read_frame fd reader buf with
  | Ok (Wire.Status_ok s) -> Ok s
  | Ok (Wire.Error m) -> Error m
  | Ok f -> Error (Format.asprintf "unexpected frame: %a" Wire.pp f)
  | Error m -> Error m
