module W = Tracing.Binio.W
module R = Tracing.Binio.R
module Snapshot = Recovery.Snapshot

type hello = {
  tenant : string;
  lifeguard : Snapshot.lifeguard;
  driver : [ `Sequential | `Pooled | `Wavefront ];
  state : [ `Functional | `Flat ];
  relaxed : bool;
  threads : int;
}

type frame =
  | Hello of hello
  | Hello_ok of { resumed_from : int }
  | Data of string
  | Fin
  | Report of string
  | Error of string
  | Status
  | Status_ok of string

let protocol_version = 1
let max_frame = 16 * 1024 * 1024

let lifeguard_tag = function
  | Snapshot.Addrcheck -> 0
  | Snapshot.Initcheck -> 1
  | Snapshot.Taintcheck -> 2
  | Snapshot.Racecheck -> 3

let lifeguard_of_tag = function
  | 0 -> Snapshot.Addrcheck
  | 1 -> Snapshot.Initcheck
  | 2 -> Snapshot.Taintcheck
  | 3 -> Snapshot.Racecheck
  | t -> raise (R.Corrupt (Printf.sprintf "bad lifeguard tag %d" t))

let driver_tag = function `Sequential -> 0 | `Pooled -> 1 | `Wavefront -> 2

let driver_of_tag = function
  | 0 -> `Sequential
  | 1 -> `Pooled
  | 2 -> `Wavefront
  | t -> raise (R.Corrupt (Printf.sprintf "bad driver tag %d" t))

let state_tag = function `Functional -> 0 | `Flat -> 1

let state_of_tag = function
  | 0 -> `Functional
  | 1 -> `Flat
  | t -> raise (R.Corrupt (Printf.sprintf "bad state tag %d" t))

let body_of = function
  | Hello h ->
    let w = W.create () in
    W.u8 w 1;
    W.u8 w protocol_version;
    W.string w h.tenant;
    W.u8 w (lifeguard_tag h.lifeguard);
    W.u8 w (driver_tag h.driver);
    W.u8 w (state_tag h.state);
    W.bool w h.relaxed;
    W.varint w h.threads;
    W.contents w
  | Hello_ok { resumed_from } ->
    let w = W.create () in
    W.u8 w 2;
    W.varint w resumed_from;
    W.contents w
  | Data payload ->
    let w = W.create () in
    W.u8 w 3;
    W.string w payload;
    W.contents w
  | Fin -> "\x04"
  | Report json ->
    let w = W.create () in
    W.u8 w 5;
    W.string w json;
    W.contents w
  | Error msg ->
    let w = W.create () in
    W.u8 w 6;
    W.string w msg;
    W.contents w
  | Status -> "\x07"
  | Status_ok json ->
    let w = W.create () in
    W.u8 w 8;
    W.string w json;
    W.contents w

let encode frame =
  let body = body_of frame in
  let n = String.length body in
  let b = Bytes.create (4 + n) in
  Bytes.set_uint8 b 0 ((n lsr 24) land 0xff);
  Bytes.set_uint8 b 1 ((n lsr 16) land 0xff);
  Bytes.set_uint8 b 2 ((n lsr 8) land 0xff);
  Bytes.set_uint8 b 3 (n land 0xff);
  Bytes.blit_string body 0 b 4 n;
  Bytes.unsafe_to_string b

let decode_body body =
  match
    let r = R.of_string body in
    let frame =
      match R.u8 r with
      | 1 ->
        let version = R.u8 r in
        if version <> protocol_version then
          raise
            (R.Corrupt
               (Printf.sprintf "unsupported protocol version %d (expected %d)"
                  version protocol_version));
        let tenant = R.string r in
        let lifeguard = lifeguard_of_tag (R.u8 r) in
        let driver = driver_of_tag (R.u8 r) in
        let state = state_of_tag (R.u8 r) in
        let relaxed = R.bool r in
        let threads = R.varint r in
        Hello { tenant; lifeguard; driver; state; relaxed; threads }
      | 2 -> Hello_ok { resumed_from = R.varint r }
      | 3 -> Data (R.string r)
      | 4 -> Fin
      | 5 -> Report (R.string r)
      | 6 -> Error (R.string r)
      | 7 -> Status
      | 8 -> Status_ok (R.string r)
      | t -> raise (R.Corrupt (Printf.sprintf "unknown frame tag %d" t))
    in
    R.expect_end r;
    frame
  with
  | frame -> Ok frame
  | exception R.Corrupt m -> Result.Error ("bad frame: " ^ m)

let pp ppf = function
  | Hello h ->
    Format.fprintf ppf "HELLO(%s, %s, threads=%d)" h.tenant
      (Snapshot.lifeguard_to_string h.lifeguard)
      h.threads
  | Hello_ok { resumed_from } -> Format.fprintf ppf "HELLO_OK(%d)" resumed_from
  | Data s -> Format.fprintf ppf "DATA(%d bytes)" (String.length s)
  | Fin -> Format.pp_print_string ppf "FIN"
  | Report s -> Format.fprintf ppf "REPORT(%d bytes)" (String.length s)
  | Error m -> Format.fprintf ppf "ERROR(%s)" m
  | Status -> Format.pp_print_string ppf "STATUS"
  | Status_ok s -> Format.fprintf ppf "STATUS_OK(%d bytes)" (String.length s)

module Reader = struct
  type t = {
    buf : Buffer.t;
    mutable consumed : int;  (* bytes of [buf] already handed out *)
    mutable broken : string option;
  }

  let create () = { buf = Buffer.create 4096; consumed = 0; broken = None }

  let feed t s ~pos ~len =
    if t.broken = None then Buffer.add_substring t.buf s pos len

  let buffered t = Buffer.length t.buf - t.consumed

  (* Drop the consumed prefix once it dominates the buffer, so a
     long-lived connection doesn't grow its buffer with the whole
     history of the stream. *)
  let compact t =
    if t.consumed > 64 * 1024 && t.consumed * 2 > Buffer.length t.buf then begin
      let rest = Buffer.sub t.buf t.consumed (buffered t) in
      Buffer.clear t.buf;
      Buffer.add_string t.buf rest;
      t.consumed <- 0
    end

  let next t =
    match t.broken with
    | Some m -> Result.Error m
    | None ->
      if buffered t < 4 then Ok None
      else begin
        let at k = Char.code (Buffer.nth t.buf (t.consumed + k)) in
        let n = (at 0 lsl 24) lor (at 1 lsl 16) lor (at 2 lsl 8) lor at 3 in
        if n > max_frame then begin
          let m =
            Printf.sprintf "oversized frame: %d bytes (limit %d)" n max_frame
          in
          t.broken <- Some m;
          Result.Error m
        end
        else if buffered t < 4 + n then Ok None
        else begin
          let body = Buffer.sub t.buf (t.consumed + 4) n in
          t.consumed <- t.consumed + 4 + n;
          compact t;
          match decode_body body with
          | Ok frame -> Ok (Some frame)
          | Result.Error m ->
            t.broken <- Some m;
            Result.Error m
        end
      end
end
