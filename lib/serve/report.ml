module J = Obs.Json

let json_of_instr_id (id : Butterfly.Instr_id.t) =
  J.Obj
    [ ("epoch", J.Int id.epoch); ("tid", J.Int id.tid);
      ("index", J.Int id.index) ]

let json_of_intervals is =
  J.List
    (List.map
       (fun (lo, hi) -> J.List [ J.Int lo; J.Int hi ])
       (Butterfly.Interval_set.intervals is))

let lifeguard_json ~lifeguard ~checked ~flagged ~errors =
  J.Obj
    [
      ("lifeguard", J.String lifeguard);
      ("checked", J.Int checked);
      ("flagged", J.Int flagged);
      ("errors", J.List errors);
    ]

let json_of_addrcheck_error (e : Lifeguards.Addrcheck.error) =
  let kind =
    match e.kind with
    | Lifeguards.Addrcheck.Unallocated_access -> "unallocated_access"
    | Unallocated_free -> "unallocated_free"
    | Double_alloc -> "double_alloc"
    | Metadata_race -> "metadata_race"
  in
  let where =
    match e.where with
    | `Instr id -> [ ("at", json_of_instr_id id) ]
    | `Block (l, t) ->
      [ ("block", J.Obj [ ("epoch", J.Int l); ("tid", J.Int t) ]) ]
  in
  J.Obj
    ([ ("kind", J.String kind); ("addrs", json_of_intervals e.addrs) ] @ where)

let json_of_initcheck_error (e : Lifeguards.Initcheck.error) =
  J.Obj
    [ ("kind", J.String "uninitialized_read");
      ("addrs", json_of_intervals e.addrs); ("at", json_of_instr_id e.id) ]

let json_of_taintcheck_error (e : Lifeguards.Taintcheck.error) =
  J.Obj
    [ ("kind", J.String "tainted_sink"); ("sink", J.Int e.sink);
      ("at", json_of_instr_id e.id) ]

let json_of_race (r : Lifeguards.Racecheck.race) =
  let kind = function Lifeguards.Racecheck.R -> "read" | W -> "write" in
  J.Obj
    [ ("kind", J.String "may_race");
      ("addr", J.Int r.addr);
      ("a", json_of_instr_id r.a); ("a_kind", J.String (kind r.a_kind));
      ("b", json_of_instr_id r.b); ("b_kind", J.String (kind r.b_kind)) ]

let sum_block_stats stats f =
  Array.fold_left
    (fun acc row -> Array.fold_left (fun acc s -> acc + f s) acc row)
    0 stats

let addrcheck (r : Lifeguards.Addrcheck.report) =
  J.to_string
    (lifeguard_json ~lifeguard:"addrcheck" ~checked:r.total_accesses
       ~flagged:r.flagged_accesses
       ~errors:(List.map json_of_addrcheck_error r.errors))

let initcheck (r : Lifeguards.Initcheck.report) =
  J.to_string
    (lifeguard_json ~lifeguard:"initcheck" ~checked:r.total_reads
       ~flagged:r.flagged_reads
       ~errors:(List.map json_of_initcheck_error r.errors))

let taintcheck (r : Lifeguards.Taintcheck.report) =
  let checked =
    sum_block_stats r.block_stats
      (fun (s : Lifeguards.Taintcheck.block_stats) -> s.checks_resolved)
  in
  J.to_string
    (lifeguard_json ~lifeguard:"taintcheck" ~checked
       ~flagged:(List.length r.errors)
       ~errors:(List.map json_of_taintcheck_error r.errors))

let racecheck (r : Lifeguards.Racecheck.report) =
  let checked =
    sum_block_stats r.block_stats
      (fun (s : Lifeguards.Racecheck.block_stats) -> s.pairs_checked)
  in
  J.to_string
    (lifeguard_json ~lifeguard:"racecheck" ~checked
       ~flagged:(List.length r.races)
       ~errors:(List.map json_of_race r.races))
