(** The daemon's frame protocol.

    Every message on a serving connection is one {e frame}: a 4-byte
    big-endian body length followed by the body — a tag byte plus a
    {!Tracing.Binio} payload.  Length-prefixing makes the stream
    self-delimiting under arbitrary write boundaries: a client may dribble
    a frame one byte at a time, or coalesce ten frames into one write, and
    {!Reader} reassembles the same frame sequence either way (the
    torn-frame battery in [test/test_serve.ml] pins this).

    The conversation (client speaks first):

    {v
    client                          daemon
    ------                          ------
    HELLO (tenant, config) ------>
                           <------ HELLO_OK (resumed_from) | ERROR
    DATA (codec chunk)     ------>        (zero or more)
    FIN                    ------>
                           <------ REPORT (json) | ERROR
    v}

    plus the out-of-band status query: a connection may send [STATUS] at
    any point (even before HELLO) and receives [STATUS_OK] carrying the
    metric registry and per-tenant session stats.

    A DATA body is a complete {!Tracing.Trace_codec} binary trace — the
    envelope, CRC and all — holding one or more epochs of events
    (heartbeats separate epochs within a chunk); the daemon walks it with
    the zero-copy {!Tracing.Trace_codec.Cursor} and feeds the rows to the
    tenant's resumable engine. *)

type hello = {
  tenant : string;  (** session key; must satisfy {!Recovery.Snapshot.valid_tenant} *)
  lifeguard : Recovery.Snapshot.lifeguard;
  driver : [ `Sequential | `Pooled | `Wavefront ];
  state : [ `Functional | `Flat ];
  relaxed : bool;  (** TaintCheck's relaxed-consistency termination *)
  threads : int;  (** application threads; every DATA row must match *)
}

type frame =
  | Hello of hello
  | Hello_ok of { resumed_from : int }
      (** epochs the daemon already holds for this tenant (fed plus
          queued, or a revived snapshot's frontier); the client must
          start sending at this epoch *)
  | Data of string
  | Fin
  | Report of string  (** the lifeguard's JSON report, one line *)
  | Error of string  (** stable, parseable rejection; the session ends *)
  | Status
  | Status_ok of string  (** JSON: per-tenant stats + Prometheus text *)

val protocol_version : int

val max_frame : int
(** Hard cap on a body's size (16 MiB): a corrupt length prefix is
    rejected before the daemon tries to buffer gigabytes. *)

val encode : frame -> string
(** Length prefix plus body. *)

val decode_body : string -> (frame, string) result
(** Decode one frame body (no length prefix).  Stable errors, all
    prefixed ["bad frame: "] — unknown tags, malformed payloads and
    trailing bytes are all rejected. *)

val pp : Format.formatter -> frame -> unit
(** One-line rendering for logs and tests (payloads elided to sizes). *)

(** Incremental frame reassembly over an arbitrarily chunked byte
    stream. *)
module Reader : sig
  type t

  val create : unit -> t

  val feed : t -> string -> pos:int -> len:int -> unit
  (** Append raw bytes as they arrive from a socket. *)

  val next : t -> (frame option, string) result
  (** The next complete frame, [None] while the buffer holds only a
      partial one.  Errors are sticky — a reader that has rejected input
      (oversized length prefix, undecodable body) keeps returning the
      same error, because a framing error leaves no way to resynchronize
      the stream.  Stable errors: the {!decode_body} messages and
      ["oversized frame: N bytes (limit M)"]. *)

  val buffered : t -> int
  (** Bytes fed but not yet consumed by complete frames. *)
end
