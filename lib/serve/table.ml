type 'a t = {
  by_key : (string, 'a) Hashtbl.t;
  mutable order : string list;  (* insertion order, oldest first *)
  mutable cursor : int;  (* rotation start for the next [tick] *)
}

let create () = { by_key = Hashtbl.create 16; order = []; cursor = 0 }
let find t key = Hashtbl.find_opt t.by_key key
let mem t key = Hashtbl.mem t.by_key key
let live t = Hashtbl.length t.by_key

let add t key v =
  if Hashtbl.mem t.by_key key then invalid_arg "Table.add: duplicate key";
  Hashtbl.replace t.by_key key v;
  t.order <- t.order @ [ key ]

let remove t key =
  if Hashtbl.mem t.by_key key then begin
    Hashtbl.remove t.by_key key;
    t.order <- List.filter (fun k -> k <> key) t.order
  end

let iter t f = List.iter (fun k -> f k (Hashtbl.find t.by_key k)) t.order

let fold t f acc =
  List.fold_left (fun acc k -> f acc k (Hashtbl.find t.by_key k)) acc t.order

let keys t = t.order

let tick t f =
  let n = List.length t.order in
  if n = 0 then 0
  else begin
    let arr = Array.of_list t.order in
    let start = t.cursor mod n in
    (* Advance the start each tick so that when the per-tick work budget
       is contended, no fixed session always goes first. *)
    t.cursor <- (start + 1) mod n;
    let worked = ref 0 in
    for i = 0 to n - 1 do
      let key = arr.((start + i) mod n) in
      (* A callback may remove sessions (e.g. a finished one); guard. *)
      match Hashtbl.find_opt t.by_key key with
      | None -> ()
      | Some v -> if f key v then incr worked
    done;
    !worked
  end
