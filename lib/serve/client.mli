(** Protocol driver for talking to a {!Daemon}.

    Used by the [butterfly client] subcommand, the test batteries and
    the serve bench.  The client owns the epoch chunking: it computes
    the same epoch rows the batch CLI would ({!Recovery.Runner.rows_of}
    over [Epochs.of_program]) and ships each row as one DATA chunk, so
    the daemon's feed sequence — and therefore its report — matches the
    batch run byte for byte. *)

val chunk_of_row : Tracing.Instr.t array array -> string
(** One epoch row as a standalone binary trace (the body of a DATA
    frame).  The daemon's cursor walk over it yields exactly this row. *)

val run_tenant :
  socket:string ->
  ?retries:int ->
  ?write_chunk:int ->
  hello:Wire.hello ->
  Tracing.Instr.t array array array ->
  (int * string, string) result
(** Full session: HELLO, one DATA per epoch row starting at the
    daemon's [resumed_from] frontier, FIN, REPORT.  Returns
    [(resumed_from, report_json)].  [write_chunk] caps every socket
    write to that many bytes — [~write_chunk:3] shreds frames across
    reads, which is how the torn-frame battery exercises reassembly
    over a real socket.  [retries] paces connection attempts (20 ms
    apart, default 100) while the daemon is still booting.  Errors are
    the daemon's stable [ERROR] strings, or
    ["connection closed by daemon"] / ["connection lost: _"] when the
    stream dies mid-flight (the crash battery's signal to reconnect). *)

val status : socket:string -> ?retries:int -> unit -> (string, string) result
(** The out-of-band STATUS query: session cards plus the daemon's
    Prometheus rendering, as one JSON object. *)
