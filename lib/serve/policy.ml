type t = { max_sessions : int; max_queued : int }

let v ~max_sessions ~max_queued =
  if max_sessions < 1 then invalid_arg "Policy.v: max_sessions must be >= 1";
  if max_queued < 1 then invalid_arg "Policy.v: max_queued must be >= 1";
  { max_sessions; max_queued }

let default = v ~max_sessions:64 ~max_queued:64
let max_sessions t = t.max_sessions
let max_queued t = t.max_queued
let throttled t ~queued = queued >= t.max_queued

type candidate = { key : string; detached : bool; idle : int }

let evictee t ~live candidates =
  if live < t.max_sessions then None
  else
    (* Only detached sessions are evictable — a connected client is
       mid-stream and eviction would abort it.  Among those, the one
       idle longest; ties break on key so the choice is deterministic. *)
    List.fold_left
      (fun best c ->
        if not c.detached then best
        else
          match best with
          | None -> Some c
          | Some b ->
            if c.idle > b.idle || (c.idle = b.idle && c.key < b.key) then Some c
            else best)
      None candidates
    |> Option.map (fun c -> c.key)
