(** One tenant's analysis session.

    A session wraps a lifeguard's [Resumable] engine (built from the
    HELLO's lifeguard/driver/state config via {!Recovery.Runner}'s typed
    ops) plus a queue of decoded-but-unfed epoch rows.  The daemon owns
    the pacing: it {!enqueue}s every DATA chunk as it arrives and calls
    {!step} from its fairness rotation, one epoch at a time, so no
    tenant can monopolize the feeding domain.

    Determinism: a DATA chunk is a complete binary trace; its rows (as
    delimited by embedded heartbeats) are fed to the engine in arrival
    order, so the feed sequence equals the batch run's
    [Epochs.of_program] sequence whenever the client chunks the same
    program — which is why the daemon's {!report} is byte-identical to
    the batch CLI's [--json] line (the differential battery pins this
    for every lifeguard × driver × backend). *)

type t

val create :
  ?pool:Butterfly.Domain_pool.t ->
  ?state_dir:string ->
  Wire.hello ->
  (t, string) result
(** Validate the HELLO and build the engine.  With [state_dir], a
    session-keyed snapshot for this tenant+lifeguard is revived (the
    eviction path's inverse) — the engine resumes at the snapshot's
    epoch frontier and {!fed} reflects it.  Stable errors:
    ["bad hello: invalid tenant id _"], ["bad hello: threads must be >= 1"],
    ["bad hello: driver needs a daemon started with --domains"],
    the {!Recovery.Runner.resume} checkpoint errors, and
    ["tenant T has a L session on disk, not L'"] when the tenant's
    on-disk session was checkpointed under a different lifeguard. *)

val tenant : t -> string
val lifeguard : t -> Recovery.Snapshot.lifeguard
val threads : t -> int

val enqueue : t -> string -> (int, string) result
(** Decode one DATA chunk (a complete binary trace; embedded heartbeats
    delimit epochs) and queue its rows.  Returns the number of rows
    queued.  Stable errors, prefixed ["bad trace chunk: "] (codec
    rejections, thread-count mismatch), plus
    ["bad stream: DATA after FIN"]. *)

val step : t -> bool
(** Feed one queued row to the engine — under
    [Obs.Scope.with_scope ~tenant ~epoch ~phase:"serve"], so streamed
    telemetry is attributable per tenant.  [false] if the queue was
    empty. *)

val fed : t -> int
(** Epochs the engine has folded. *)

val queued : t -> int
(** Rows decoded but not yet fed. *)

val frontier : t -> int
(** [fed + queued] — the epoch the client must send next; HELLO_OK's
    [resumed_from]. *)

val fin : t -> unit
(** Record the client's FIN; further DATA is rejected. *)

val fin_received : t -> bool

val finished : t -> bool
(** FIN received and every queued row fed — the report is due. *)

val report : t -> string
(** Drain the queue, finish the engine and render the canonical JSON
    line ({!Report}).  Idempotent (the first result is cached); a
    session that has reported cannot be fed or evicted. *)

val checkpoint : t -> dir:string -> (int, string) result
(** Snapshot the engine at its current sealed-epoch frontier (queued
    rows stay queued) to {!Recovery.Snapshot.session_path}; returns the
    snapshot size.  This is the daemon's periodic crash-survivability
    checkpoint.  Fails only on a session that has already reported. *)

val evict : t -> dir:string -> (int, string) result
(** Drain the queue and checkpoint the engine to
    {!Recovery.Snapshot.session_path} — the idle/oversubscription
    eviction path; returns the snapshot size.  A later {!create} with
    the same [state_dir] revives it transparently.  Fails only on a
    session that has already reported. *)

val stats_json : t -> Obs.Json.t
(** Session card for the STATUS surface: tenant, config, fed/queued
    counts, fin/reported flags. *)
