type labels = (string * string) list

let canon_labels ls = List.sort compare ls

(* ------------------------------------------------------------------ *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  let escape s =
    let b = Buffer.create (String.length s + 2) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\r' -> Buffer.add_string b "\\r"
        | '\t' -> Buffer.add_string b "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let float_repr f =
    if not (Float.is_finite f) then "null"
    else if Float.is_integer f && Float.abs f < 1e15 then
      Printf.sprintf "%.0f" f
    else Printf.sprintf "%.9g" f

  let rec write b = function
    | Null -> Buffer.add_string b "null"
    | Bool v -> Buffer.add_string b (string_of_bool v)
    | Int v -> Buffer.add_string b (string_of_int v)
    | Float v -> Buffer.add_string b (float_repr v)
    | String s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
    | List vs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          write b v)
        vs;
      Buffer.add_char b ']'
    | Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          Buffer.add_string b (escape k);
          Buffer.add_string b "\":";
          write b v)
        kvs;
      Buffer.add_char b '}'

  let to_string j =
    let b = Buffer.create 256 in
    write b j;
    Buffer.contents b

  let pp ppf j = Format.pp_print_string ppf (to_string j)

  (* Recursive-descent parser, the inverse of [write].  Kept dependency-free
     for the same reason as the printer: obs must not tax the build. *)
  exception Parse of int * string

  let of_string s =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Parse (!pos, msg)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let skip_ws () =
      while
        !pos < n
        && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
      do
        incr pos
      done
    in
    let expect c =
      if peek () = Some c then incr pos
      else fail (Printf.sprintf "expected '%c'" c)
    in
    let literal lit v =
      let k = String.length lit in
      if !pos + k <= n && String.sub s !pos k = lit then (
        pos := !pos + k;
        v)
      else fail ("expected " ^ lit)
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string"
        else
          match s.[!pos] with
          | '"' ->
            incr pos;
            Buffer.contents b
          | '\\' ->
            incr pos;
            if !pos >= n then fail "unterminated escape";
            (match s.[!pos] with
            | '"' -> Buffer.add_char b '"'
            | '\\' -> Buffer.add_char b '\\'
            | '/' -> Buffer.add_char b '/'
            | 'b' -> Buffer.add_char b '\b'
            | 'f' -> Buffer.add_char b '\012'
            | 'n' -> Buffer.add_char b '\n'
            | 'r' -> Buffer.add_char b '\r'
            | 't' -> Buffer.add_char b '\t'
            | 'u' ->
              if !pos + 4 >= n then fail "truncated \\u escape";
              let code =
                match int_of_string_opt ("0x" ^ String.sub s (!pos + 1) 4) with
                | Some c -> c
                | None -> fail "bad \\u escape"
              in
              (* UTF-8 encode the code point (surrogate pairs untreated:
                 each half round-trips as its own 3-byte sequence). *)
              if code < 0x80 then Buffer.add_char b (Char.chr code)
              else if code < 0x800 then (
                Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
                Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F))))
              else (
                Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
                Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F))));
              pos := !pos + 4
            | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
            incr pos;
            go ()
          | c ->
            Buffer.add_char b c;
            incr pos;
            go ()
      in
      go ()
    in
    let digits () =
      while !pos < n && match s.[!pos] with '0' .. '9' -> true | _ -> false do
        incr pos
      done
    in
    let parse_number () =
      let start = !pos in
      if peek () = Some '-' then incr pos;
      digits ();
      let is_float = ref false in
      if peek () = Some '.' then (
        is_float := true;
        incr pos;
        digits ());
      (match peek () with
      | Some ('e' | 'E') ->
        is_float := true;
        incr pos;
        (match peek () with Some ('+' | '-') -> incr pos | _ -> ());
        digits ()
      | _ -> ());
      let text = String.sub s start (!pos - start) in
      if text = "" || text = "-" then fail "bad number";
      if !is_float then Float (float_of_string text)
      else
        match int_of_string_opt text with
        | Some i -> Int i
        | None -> Float (float_of_string text)
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '"' -> String (parse_string ())
      | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then (
          incr pos;
          Obj [])
        else
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
              incr pos;
              members ((k, v) :: acc)
            | Some '}' ->
              incr pos;
              Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
      | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then (
          incr pos;
          List [])
        else
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
              incr pos;
              elements (v :: acc)
            | Some ']' ->
              incr pos;
              List (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          elements []
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some ('-' | '0' .. '9') -> parse_number ()
      | Some c -> fail (Printf.sprintf "unexpected '%c'" c)
    in
    match
      let v = parse_value () in
      skip_ws ();
      if !pos <> n then fail "trailing input after document";
      v
    with
    | v -> Ok v
    | exception Parse (p, m) -> Error (Printf.sprintf "byte %d: %s" p m)
end

(* ------------------------------------------------------------------ *)

module Snapshot = struct
  type histogram = {
    count : int;
    sum : float;
    min : float;
    max : float;
    buckets : (float * int) list;
  }

  type value = Counter of int | Gauge of float | Histogram of histogram
  type entry = { name : string; labels : labels; value : value }
  type t = entry list

  let find ?labels t name =
    List.find_opt
      (fun e ->
        e.name = name
        &&
        match labels with
        | None -> true
        | Some ls -> e.labels = canon_labels ls)
      t
    |> Option.map (fun e -> e.value)

  let counter ?labels t name =
    match find ?labels t name with Some (Counter n) -> n | _ -> 0

  let gauge ?labels t name =
    match find ?labels t name with
    | Some (Gauge v) -> v
    | Some (Counter n) -> float_of_int n
    | _ -> 0.0

  let json_of_value = function
    | Counter n -> Json.Obj [ ("type", Json.String "counter"); ("value", Json.Int n) ]
    | Gauge v -> Json.Obj [ ("type", Json.String "gauge"); ("value", Json.Float v) ]
    | Histogram h ->
      Json.Obj
        [
          ("type", Json.String "histogram");
          ("count", Json.Int h.count);
          ("sum", Json.Float h.sum);
          ("min", Json.Float h.min);
          ("max", Json.Float h.max);
          ( "buckets",
            Json.List
              (List.map
                 (fun (ub, n) -> Json.List [ Json.Float ub; Json.Int n ])
                 h.buckets) );
        ]

  let to_json t =
    Json.List
      (List.map
         (fun e ->
           let base =
             [ ("name", Json.String e.name) ]
             @ (if e.labels = [] then []
                else
                  [
                    ( "labels",
                      Json.Obj
                        (List.map (fun (k, v) -> (k, Json.String v)) e.labels)
                    );
                  ])
           in
           match json_of_value e.value with
           | Json.Obj fields -> Json.Obj (base @ fields)
           | j -> Json.Obj (base @ [ ("value", j) ]))
         t)

  (* Prometheus text exposition.  Dots (the repo naming convention)
     become underscores; everything else obs names use is already legal. *)
  let prom_name name =
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
        | _ -> '_')
      name

  let prom_escape v =
    let b = Buffer.create (String.length v) in
    String.iter
      (fun c ->
        match c with
        | '\\' -> Buffer.add_string b "\\\\"
        | '"' -> Buffer.add_string b "\\\""
        | '\n' -> Buffer.add_string b "\\n"
        | c -> Buffer.add_char b c)
      v;
    Buffer.contents b

  let prom_num v =
    if Float.is_nan v then "NaN"
    else if v = Float.infinity then "+Inf"
    else if v = Float.neg_infinity then "-Inf"
    else if Float.is_integer v && Float.abs v < 1e15 then
      Printf.sprintf "%.0f" v
    else Printf.sprintf "%.9g" v

  let prom_labels ls =
    if ls = [] then ""
    else
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> prom_name k ^ "=\"" ^ prom_escape v ^ "\"") ls)
      ^ "}"

  let to_prometheus t =
    let b = Buffer.create 1024 in
    let typed : (string, unit) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun e ->
        let name = prom_name e.name in
        let kind =
          match e.value with
          | Counter _ -> "counter"
          | Gauge _ -> "gauge"
          | Histogram _ -> "histogram"
        in
        if not (Hashtbl.mem typed name) then begin
          Hashtbl.add typed name ();
          Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name kind)
        end;
        match e.value with
        | Counter n ->
          Buffer.add_string b
            (Printf.sprintf "%s%s %d\n" name (prom_labels e.labels) n)
        | Gauge v ->
          Buffer.add_string b
            (Printf.sprintf "%s%s %s\n" name (prom_labels e.labels) (prom_num v))
        | Histogram h ->
          (* Buckets are disjoint [(ub, n in (ub/2, ub]])], ascending, and
             partition the observations — the running sum is exactly the
             cumulative [le] series Prometheus expects. *)
          let cum = ref 0 in
          List.iter
            (fun (ub, n) ->
              cum := !cum + n;
              Buffer.add_string b
                (Printf.sprintf "%s_bucket%s %d\n" name
                   (prom_labels (e.labels @ [ ("le", prom_num ub) ]))
                   !cum))
            h.buckets;
          Buffer.add_string b
            (Printf.sprintf "%s_bucket%s %d\n" name
               (prom_labels (e.labels @ [ ("le", "+Inf") ]))
               h.count);
          Buffer.add_string b
            (Printf.sprintf "%s_sum%s %s\n" name (prom_labels e.labels)
               (prom_num h.sum));
          Buffer.add_string b
            (Printf.sprintf "%s_count%s %d\n" name (prom_labels e.labels)
               h.count))
      t;
    Buffer.contents b

  let dur ns =
    if ns >= 1e9 then Printf.sprintf "%.3fs" (ns /. 1e9)
    else if ns >= 1e6 then Printf.sprintf "%.3fms" (ns /. 1e6)
    else if ns >= 1e3 then Printf.sprintf "%.3fus" (ns /. 1e3)
    else Printf.sprintf "%.0fns" ns

  let num v =
    if Float.is_integer v && Float.abs v < 1e15 then
      Printf.sprintf "%.0f" v
    else Printf.sprintf "%.4g" v

  let pp ppf t =
    let label_str ls =
      if ls = [] then ""
      else
        "{" ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) ls) ^ "}"
    in
    let value_str name = function
      | Counter n -> string_of_int n
      | Gauge v -> num v
      | Histogram h ->
        let is_ns =
          String.length name >= 3
          && String.sub name (String.length name - 3) 3 = ".ns"
        in
        let one v = if is_ns then dur v else num v in
        if h.count = 0 then "n=0"
        else
          Printf.sprintf "n=%d total=%s mean=%s max=%s" h.count (one h.sum)
            (one (h.sum /. float_of_int h.count))
            (one h.max)
    in
    let rows =
      List.map
        (fun e -> (e.name ^ label_str e.labels, value_str e.name e.value))
        t
    in
    let w = List.fold_left (fun m (k, _) -> max m (String.length k)) 0 rows in
    List.iter
      (fun (k, v) ->
        Format.fprintf ppf "%s%s  %s@." k
          (String.make (w - String.length k) ' ')
          v)
      rows
end

(* ------------------------------------------------------------------ *)

let now_ns = Monotonic_clock.now

(* [live] is false iff the null sink is installed; declared ahead of
   [Sink] so [Scope] (below) can degrade to a bare call under it. *)
let live = ref false

module Scope = struct
  type t = {
    epoch : int option;
    tid : int option;
    phase : string option;
    tenant : string option;
  }

  let none = { epoch = None; tid = None; phase = None; tenant = None }

  (* Domain-local: pool workers layer scopes over their own tasks without
     racing the master or each other. *)
  let key = Domain.DLS.new_key (fun () -> none)
  let current () = Domain.DLS.get key

  let with_scope ?epoch ?tid ?phase ?tenant f =
    if not !live then f ()
    else begin
      let prev = Domain.DLS.get key in
      let merged =
        {
          epoch = (match epoch with Some _ -> epoch | None -> prev.epoch);
          tid = (match tid with Some _ -> tid | None -> prev.tid);
          phase = (match phase with Some _ -> phase | None -> prev.phase);
          tenant = (match tenant with Some _ -> tenant | None -> prev.tenant);
        }
      in
      Domain.DLS.set key merged;
      Fun.protect ~finally:(fun () -> Domain.DLS.set key prev) f
    end
end

(* Observations land in power-of-two buckets: index k holds values in
   (2^(k-1), 2^k], with everything <= 1 in bucket 0. *)
let bucket_of v =
  let rec go k ub = if v <= ub || k >= 62 then k else go (k + 1) (ub *. 2.0) in
  go 0 1.0

module Sink = struct
  type cell =
    | Ccounter of int ref
    | Cgauge of float ref
    | Chist of hist_cell

  and hist_cell = {
    mutable hc_count : int;
    mutable hc_sum : float;
    mutable hc_min : float;
    mutable hc_max : float;
    hc_buckets : (int, int) Hashtbl.t;
  }

  type t = {
    h_add : string -> labels -> int -> unit;
    h_set : string -> labels -> float -> unit;
    h_max : string -> labels -> float -> unit;
    h_obs : string -> labels -> float -> unit;
    h_snapshot : unit -> Snapshot.t;
    h_null : bool;
  }

  let null =
    {
      h_add = (fun _ _ _ -> ());
      h_set = (fun _ _ _ -> ());
      h_max = (fun _ _ _ -> ());
      h_obs = (fun _ _ _ -> ());
      h_snapshot = (fun () -> []);
      h_null = true;
    }

  let memory () =
    let reg : (string * labels, cell) Hashtbl.t = Hashtbl.create 64 in
    (* One lock per registry: instruments are hit from pool worker domains
       (see {!Domain_pool}), and an unsynchronized Hashtbl can corrupt
       under concurrent resize — not merely lose updates. *)
    let lock = Mutex.create () in
    let cell name ls mk =
      let key = (name, ls) in
      match Hashtbl.find_opt reg key with
      | Some c -> c
      | None ->
        let c = mk () in
        Hashtbl.replace reg key c;
        c
    in
    let add name ls n =
      Mutex.protect lock (fun () ->
          match cell name ls (fun () -> Ccounter (ref 0)) with
          | Ccounter r -> r := !r + n
          | Cgauge _ | Chist _ -> ())
    in
    let set name ls v =
      Mutex.protect lock (fun () ->
          match cell name ls (fun () -> Cgauge (ref v)) with
          | Cgauge r -> r := v
          | Ccounter _ | Chist _ -> ())
    in
    let set_max name ls v =
      Mutex.protect lock (fun () ->
          match cell name ls (fun () -> Cgauge (ref v)) with
          | Cgauge r -> if v > !r then r := v
          | Ccounter _ | Chist _ -> ())
    in
    let obs name ls v =
      Mutex.protect lock (fun () ->
      match
        cell name ls (fun () ->
            Chist
              {
                hc_count = 0;
                hc_sum = 0.0;
                hc_min = 0.0;
                hc_max = 0.0;
                hc_buckets = Hashtbl.create 8;
              })
      with
      | Chist h ->
        h.hc_min <- (if h.hc_count = 0 then v else Float.min h.hc_min v);
        h.hc_max <- (if h.hc_count = 0 then v else Float.max h.hc_max v);
        h.hc_count <- h.hc_count + 1;
        h.hc_sum <- h.hc_sum +. v;
        let b = bucket_of v in
        Hashtbl.replace h.hc_buckets b
          (1 + Option.value (Hashtbl.find_opt h.hc_buckets b) ~default:0)
      | Ccounter _ | Cgauge _ -> ())
    in
    let snapshot () =
      Mutex.protect lock (fun () ->
      Hashtbl.fold
        (fun (name, labels) c acc ->
          let value =
            match c with
            | Ccounter r -> Snapshot.Counter !r
            | Cgauge r -> Snapshot.Gauge !r
            | Chist h ->
              let buckets =
                Hashtbl.fold (fun k n acc -> (k, n) :: acc) h.hc_buckets []
                |> List.sort compare
                |> List.map (fun (k, n) -> (Float.pow 2.0 (float_of_int k), n))
              in
              Snapshot.Histogram
                {
                  count = h.hc_count;
                  sum = h.hc_sum;
                  min = h.hc_min;
                  max = h.hc_max;
                  buckets;
                }
          in
          { Snapshot.name; labels; value } :: acc)
        reg []
      |> List.sort (fun (a : Snapshot.entry) b ->
             compare (a.name, a.labels) (b.name, b.labels)))
    in
    {
      h_add = add;
      h_set = set;
      h_max = set_max;
      h_obs = obs;
      h_snapshot = snapshot;
      h_null = false;
    }

  let jsonl ppf =
    let lock = Mutex.create () in
    let scope_fields () =
      let s = Scope.current () in
      if s = Scope.none then []
      else
        [
          ( "scope",
            Json.Obj
              ((match s.Scope.epoch with
               | Some e -> [ ("epoch", Json.Int e) ]
               | None -> [])
              @ (match s.Scope.tid with
                | Some t -> [ ("tid", Json.Int t) ]
                | None -> [])
              @ (match s.Scope.phase with
                | Some p -> [ ("phase", Json.String p) ]
                | None -> [])
              @
              match s.Scope.tenant with
              | Some tn -> [ ("tenant", Json.String tn) ]
              | None -> []) );
        ]
    in
    let emit kind name ls v =
      let j =
        Json.Obj
          ([ ("kind", Json.String kind); ("name", Json.String name) ]
          @ (if ls = [] then []
             else
               [
                 ( "labels",
                   Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) ls) );
               ])
          @ [ ("v", v); ("t_ns", Json.Float (Int64.to_float (now_ns ()))) ]
          @ scope_fields ())
      in
      Mutex.protect lock (fun () ->
          Format.fprintf ppf "%s@." (Json.to_string j))
    in
    {
      h_add = (fun name ls n -> emit "add" name ls (Json.Int n));
      h_set = (fun name ls v -> emit "set" name ls (Json.Float v));
      h_max = (fun name ls v -> emit "set_max" name ls (Json.Float v));
      h_obs = (fun name ls v -> emit "observe" name ls (Json.Float v));
      h_snapshot = (fun () -> []);
      h_null = false;
    }

  let tee a b =
    {
      h_add = (fun n l v -> a.h_add n l v; b.h_add n l v);
      h_set = (fun n l v -> a.h_set n l v; b.h_set n l v);
      h_max = (fun n l v -> a.h_max n l v; b.h_max n l v);
      h_obs = (fun n l v -> a.h_obs n l v; b.h_obs n l v);
      h_snapshot = (fun () -> a.h_snapshot () @ b.h_snapshot ());
      h_null = a.h_null && b.h_null;
    }

  let snapshot t = t.h_snapshot ()
end

let current = ref Sink.null

let set_sink s =
  current := s;
  live := not s.Sink.h_null

let sink () = !current
let enabled () = !live

let with_sink s f =
  let prev = !current in
  set_sink s;
  Fun.protect ~finally:(fun () -> set_sink prev) f

(* ------------------------------------------------------------------ *)

type handle = { name : string; labels : labels }

let handle ?(labels = []) name = { name; labels = canon_labels labels }

module Counter = struct
  type t = handle

  let make = handle
  let add c n = if !live then !current.Sink.h_add c.name c.labels n
  let incr c = add c 1
end

module Gauge = struct
  type t = handle

  let make = handle
  let set g v = if !live then !current.Sink.h_set g.name g.labels v
  let set_max g v = if !live then !current.Sink.h_max g.name g.labels v
end

module Histogram = struct
  type t = handle

  let make = handle
  let observe h v = if !live then !current.Sink.h_obs h.name h.labels v
end

module Span = struct
  type t = handle

  let make = handle

  let time s f =
    if not !live then f ()
    else
      let t0 = now_ns () in
      Fun.protect
        ~finally:(fun () ->
          let dt = Int64.to_float (Int64.sub (now_ns ()) t0) in
          if !live then !current.Sink.h_obs s.name s.labels dt)
        f
end
