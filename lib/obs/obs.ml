type labels = (string * string) list

let canon_labels ls = List.sort compare ls

(* ------------------------------------------------------------------ *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  let escape s =
    let b = Buffer.create (String.length s + 2) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\r' -> Buffer.add_string b "\\r"
        | '\t' -> Buffer.add_string b "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let float_repr f =
    if not (Float.is_finite f) then "null"
    else if Float.is_integer f && Float.abs f < 1e15 then
      Printf.sprintf "%.0f" f
    else Printf.sprintf "%.9g" f

  let rec write b = function
    | Null -> Buffer.add_string b "null"
    | Bool v -> Buffer.add_string b (string_of_bool v)
    | Int v -> Buffer.add_string b (string_of_int v)
    | Float v -> Buffer.add_string b (float_repr v)
    | String s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
    | List vs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          write b v)
        vs;
      Buffer.add_char b ']'
    | Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          Buffer.add_string b (escape k);
          Buffer.add_string b "\":";
          write b v)
        kvs;
      Buffer.add_char b '}'

  let to_string j =
    let b = Buffer.create 256 in
    write b j;
    Buffer.contents b

  let pp ppf j = Format.pp_print_string ppf (to_string j)
end

(* ------------------------------------------------------------------ *)

module Snapshot = struct
  type histogram = {
    count : int;
    sum : float;
    min : float;
    max : float;
    buckets : (float * int) list;
  }

  type value = Counter of int | Gauge of float | Histogram of histogram
  type entry = { name : string; labels : labels; value : value }
  type t = entry list

  let find ?labels t name =
    List.find_opt
      (fun e ->
        e.name = name
        &&
        match labels with
        | None -> true
        | Some ls -> e.labels = canon_labels ls)
      t
    |> Option.map (fun e -> e.value)

  let counter ?labels t name =
    match find ?labels t name with Some (Counter n) -> n | _ -> 0

  let gauge ?labels t name =
    match find ?labels t name with
    | Some (Gauge v) -> v
    | Some (Counter n) -> float_of_int n
    | _ -> 0.0

  let json_of_value = function
    | Counter n -> Json.Obj [ ("type", Json.String "counter"); ("value", Json.Int n) ]
    | Gauge v -> Json.Obj [ ("type", Json.String "gauge"); ("value", Json.Float v) ]
    | Histogram h ->
      Json.Obj
        [
          ("type", Json.String "histogram");
          ("count", Json.Int h.count);
          ("sum", Json.Float h.sum);
          ("min", Json.Float h.min);
          ("max", Json.Float h.max);
          ( "buckets",
            Json.List
              (List.map
                 (fun (ub, n) -> Json.List [ Json.Float ub; Json.Int n ])
                 h.buckets) );
        ]

  let to_json t =
    Json.List
      (List.map
         (fun e ->
           let base =
             [ ("name", Json.String e.name) ]
             @ (if e.labels = [] then []
                else
                  [
                    ( "labels",
                      Json.Obj
                        (List.map (fun (k, v) -> (k, Json.String v)) e.labels)
                    );
                  ])
           in
           match json_of_value e.value with
           | Json.Obj fields -> Json.Obj (base @ fields)
           | j -> Json.Obj (base @ [ ("value", j) ]))
         t)

  let dur ns =
    if ns >= 1e9 then Printf.sprintf "%.3fs" (ns /. 1e9)
    else if ns >= 1e6 then Printf.sprintf "%.3fms" (ns /. 1e6)
    else if ns >= 1e3 then Printf.sprintf "%.3fus" (ns /. 1e3)
    else Printf.sprintf "%.0fns" ns

  let num v =
    if Float.is_integer v && Float.abs v < 1e15 then
      Printf.sprintf "%.0f" v
    else Printf.sprintf "%.4g" v

  let pp ppf t =
    let label_str ls =
      if ls = [] then ""
      else
        "{" ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) ls) ^ "}"
    in
    let value_str name = function
      | Counter n -> string_of_int n
      | Gauge v -> num v
      | Histogram h ->
        let is_ns =
          String.length name >= 3
          && String.sub name (String.length name - 3) 3 = ".ns"
        in
        let one v = if is_ns then dur v else num v in
        if h.count = 0 then "n=0"
        else
          Printf.sprintf "n=%d total=%s mean=%s max=%s" h.count (one h.sum)
            (one (h.sum /. float_of_int h.count))
            (one h.max)
    in
    let rows =
      List.map
        (fun e -> (e.name ^ label_str e.labels, value_str e.name e.value))
        t
    in
    let w = List.fold_left (fun m (k, _) -> max m (String.length k)) 0 rows in
    List.iter
      (fun (k, v) ->
        Format.fprintf ppf "%s%s  %s@." k
          (String.make (w - String.length k) ' ')
          v)
      rows
end

(* ------------------------------------------------------------------ *)

let now_ns = Monotonic_clock.now

(* Observations land in power-of-two buckets: index k holds values in
   (2^(k-1), 2^k], with everything <= 1 in bucket 0. *)
let bucket_of v =
  let rec go k ub = if v <= ub || k >= 62 then k else go (k + 1) (ub *. 2.0) in
  go 0 1.0

module Sink = struct
  type cell =
    | Ccounter of int ref
    | Cgauge of float ref
    | Chist of hist_cell

  and hist_cell = {
    mutable hc_count : int;
    mutable hc_sum : float;
    mutable hc_min : float;
    mutable hc_max : float;
    hc_buckets : (int, int) Hashtbl.t;
  }

  type t = {
    h_add : string -> labels -> int -> unit;
    h_set : string -> labels -> float -> unit;
    h_max : string -> labels -> float -> unit;
    h_obs : string -> labels -> float -> unit;
    h_snapshot : unit -> Snapshot.t;
    h_null : bool;
  }

  let null =
    {
      h_add = (fun _ _ _ -> ());
      h_set = (fun _ _ _ -> ());
      h_max = (fun _ _ _ -> ());
      h_obs = (fun _ _ _ -> ());
      h_snapshot = (fun () -> []);
      h_null = true;
    }

  let memory () =
    let reg : (string * labels, cell) Hashtbl.t = Hashtbl.create 64 in
    (* One lock per registry: instruments are hit from pool worker domains
       (see {!Domain_pool}), and an unsynchronized Hashtbl can corrupt
       under concurrent resize — not merely lose updates. *)
    let lock = Mutex.create () in
    let cell name ls mk =
      let key = (name, ls) in
      match Hashtbl.find_opt reg key with
      | Some c -> c
      | None ->
        let c = mk () in
        Hashtbl.replace reg key c;
        c
    in
    let add name ls n =
      Mutex.protect lock (fun () ->
          match cell name ls (fun () -> Ccounter (ref 0)) with
          | Ccounter r -> r := !r + n
          | Cgauge _ | Chist _ -> ())
    in
    let set name ls v =
      Mutex.protect lock (fun () ->
          match cell name ls (fun () -> Cgauge (ref v)) with
          | Cgauge r -> r := v
          | Ccounter _ | Chist _ -> ())
    in
    let set_max name ls v =
      Mutex.protect lock (fun () ->
          match cell name ls (fun () -> Cgauge (ref v)) with
          | Cgauge r -> if v > !r then r := v
          | Ccounter _ | Chist _ -> ())
    in
    let obs name ls v =
      Mutex.protect lock (fun () ->
      match
        cell name ls (fun () ->
            Chist
              {
                hc_count = 0;
                hc_sum = 0.0;
                hc_min = 0.0;
                hc_max = 0.0;
                hc_buckets = Hashtbl.create 8;
              })
      with
      | Chist h ->
        h.hc_min <- (if h.hc_count = 0 then v else Float.min h.hc_min v);
        h.hc_max <- (if h.hc_count = 0 then v else Float.max h.hc_max v);
        h.hc_count <- h.hc_count + 1;
        h.hc_sum <- h.hc_sum +. v;
        let b = bucket_of v in
        Hashtbl.replace h.hc_buckets b
          (1 + Option.value (Hashtbl.find_opt h.hc_buckets b) ~default:0)
      | Ccounter _ | Cgauge _ -> ())
    in
    let snapshot () =
      Mutex.protect lock (fun () ->
      Hashtbl.fold
        (fun (name, labels) c acc ->
          let value =
            match c with
            | Ccounter r -> Snapshot.Counter !r
            | Cgauge r -> Snapshot.Gauge !r
            | Chist h ->
              let buckets =
                Hashtbl.fold (fun k n acc -> (k, n) :: acc) h.hc_buckets []
                |> List.sort compare
                |> List.map (fun (k, n) -> (Float.pow 2.0 (float_of_int k), n))
              in
              Snapshot.Histogram
                {
                  count = h.hc_count;
                  sum = h.hc_sum;
                  min = h.hc_min;
                  max = h.hc_max;
                  buckets;
                }
          in
          { Snapshot.name; labels; value } :: acc)
        reg []
      |> List.sort (fun (a : Snapshot.entry) b ->
             compare (a.name, a.labels) (b.name, b.labels)))
    in
    {
      h_add = add;
      h_set = set;
      h_max = set_max;
      h_obs = obs;
      h_snapshot = snapshot;
      h_null = false;
    }

  let jsonl ppf =
    let lock = Mutex.create () in
    let emit kind name ls v =
      let j =
        Json.Obj
          ([ ("kind", Json.String kind); ("name", Json.String name) ]
          @ (if ls = [] then []
             else
               [
                 ( "labels",
                   Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) ls) );
               ])
          @ [ ("v", v); ("t_ns", Json.Float (Int64.to_float (now_ns ()))) ])
      in
      Mutex.protect lock (fun () ->
          Format.fprintf ppf "%s@." (Json.to_string j))
    in
    {
      h_add = (fun name ls n -> emit "add" name ls (Json.Int n));
      h_set = (fun name ls v -> emit "set" name ls (Json.Float v));
      h_max = (fun name ls v -> emit "set_max" name ls (Json.Float v));
      h_obs = (fun name ls v -> emit "observe" name ls (Json.Float v));
      h_snapshot = (fun () -> []);
      h_null = false;
    }

  let tee a b =
    {
      h_add = (fun n l v -> a.h_add n l v; b.h_add n l v);
      h_set = (fun n l v -> a.h_set n l v; b.h_set n l v);
      h_max = (fun n l v -> a.h_max n l v; b.h_max n l v);
      h_obs = (fun n l v -> a.h_obs n l v; b.h_obs n l v);
      h_snapshot = (fun () -> a.h_snapshot () @ b.h_snapshot ());
      h_null = a.h_null && b.h_null;
    }

  let snapshot t = t.h_snapshot ()
end

let current = ref Sink.null
let live = ref false

let set_sink s =
  current := s;
  live := not s.Sink.h_null

let sink () = !current
let enabled () = !live

let with_sink s f =
  let prev = !current in
  set_sink s;
  Fun.protect ~finally:(fun () -> set_sink prev) f

(* ------------------------------------------------------------------ *)

type handle = { name : string; labels : labels }

let handle ?(labels = []) name = { name; labels = canon_labels labels }

module Counter = struct
  type t = handle

  let make = handle
  let add c n = if !live then !current.Sink.h_add c.name c.labels n
  let incr c = add c 1
end

module Gauge = struct
  type t = handle

  let make = handle
  let set g v = if !live then !current.Sink.h_set g.name g.labels v
  let set_max g v = if !live then !current.Sink.h_max g.name g.labels v
end

module Histogram = struct
  type t = handle

  let make = handle
  let observe h v = if !live then !current.Sink.h_obs h.name h.labels v
end

module Span = struct
  type t = handle

  let make = handle

  let time s f =
    if not !live then f ()
    else
      let t0 = now_ns () in
      Fun.protect
        ~finally:(fun () ->
          let dt = Int64.to_float (Int64.sub (now_ns ()) t0) in
          if !live then !current.Sink.h_obs s.name s.labels dt)
        f
end
