(** Telemetry for the butterfly pipeline.

    Counters, gauges, histograms and monotonic-clock spans behind a
    pluggable {e sink}.  The default sink is {!Sink.null}: every
    instrument degrades to a single [bool] load, so hot paths can stay
    instrumented unconditionally.  Installing {!Sink.memory} turns the
    same instruments into an in-process registry that can be
    {!Sink.snapshot}ted into a deterministic, serializable report;
    {!Sink.jsonl} streams every event as one JSON line for offline
    analysis.

    Metric handles ({!Counter.t} etc.) are cheap immutable records —
    create them where convenient (module init, [create] functions) and
    reuse them.  A handle is bound to whatever sink is installed at the
    moment it is {e used}, not when it is made, so swapping sinks
    mid-run redirects all existing instruments.

    Naming convention: dot-separated lowercase ([scheduler.blocks_closed]),
    durations as histograms whose name ends in [.ns].  Dimensions that
    would otherwise multiply metric names (which lifeguard, which driver)
    are labels. *)

type labels = (string * string) list
(** Key/value dimensions attached to a metric.  Order is irrelevant —
    labels are canonicalized (sorted by key) on handle creation. *)

(** Minimal JSON document model and printer (no external dependency). *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  val to_string : t -> string
  (** Compact one-line rendering.  Non-finite floats become [null]. *)

  val of_string : string -> (t, string) result
  (** Parse one JSON document (the inverse of {!to_string}, accepting any
      standard JSON).  Numbers without a fraction or exponent that fit in
      an OCaml [int] parse as [Int], everything else as [Float].  Errors
      carry the byte offset of the first offending character.  Feed it
      one line at a time to read {!Sink.jsonl} streams back. *)

  val pp : Format.formatter -> t -> unit
end

(** Immutable view of a metric registry at one instant. *)
module Snapshot : sig
  type histogram = {
    count : int;
    sum : float;
    min : float;
        (** Smallest observation.  A [count = 0] histogram renders every
            statistic — [min] included — as [0.]; {!Sink.memory} cannot
            produce one (a series only exists once observed), so the case
            only arises in hand-built snapshots. *)
    max : float;
    buckets : (float * int) list;
        (** [(ub, n)]: [n] observations fell in [(ub/2, ub]]; power-of-two
            bounds, sorted ascending. *)
  }

  type value = Counter of int | Gauge of float | Histogram of histogram
  type entry = { name : string; labels : labels; value : value }

  type t = entry list
  (** Sorted by [(name, labels)] — snapshots of the same run are
      structurally comparable. *)

  val find : ?labels:labels -> t -> string -> value option
  (** First entry with this name (and exactly these labels, if given). *)

  val counter : ?labels:labels -> t -> string -> int
  (** Counter value, 0 when absent. *)

  val gauge : ?labels:labels -> t -> string -> float
  (** Gauge value, 0 when absent. *)

  val to_json : t -> Json.t

  val to_prometheus : t -> string
  (** Prometheus text exposition (format 0.0.4): one [# TYPE] line per
      metric family, dots in names mapped to underscores, histograms as
      cumulative [_bucket{le="..."}] series plus [_sum] and [_count].
      This is the [/metrics] surface a scraping daemon serves; the CLI
      prints it with [stats --prometheus]. *)

  val pp : Format.formatter -> t -> unit
  (** Human-readable table; [.ns] histograms render as durations. *)
end

(** Provenance context for streamed events.

    A scope tags every event the current domain emits with the pipeline
    coordinates it was produced under — uncertainty epoch, thread id and
    pass/phase name — which makes a {!Sink.jsonl} stream replayable into
    a per-epoch timeline ([viz --dashboard]).  Scopes are domain-local:
    pool workers annotate their own tasks without racing the master.
    Only {!Sink.jsonl} records them; aggregating sinks ignore scopes, so
    the [--stats] snapshot surface is unchanged. *)
module Scope : sig
  type t = {
    epoch : int option;
    tid : int option;
    phase : string option;
    tenant : string option;
        (** serving-layer provenance: which tenant session the event was
            produced under (set by [lib/serve], [None] in batch runs) *)
  }

  val none : t

  val current : unit -> t
  (** The scope active on the calling domain ({!none} outside any
      {!with_scope}). *)

  val with_scope :
    ?epoch:int -> ?tid:int -> ?phase:string -> ?tenant:string ->
    (unit -> 'a) -> 'a
  (** Run the thunk with the given coordinates layered over the current
      scope (omitted fields are inherited), restoring the previous scope
      afterwards — also on exceptions.  Under the null sink this is just
      the call. *)
end

module Sink : sig
  type t

  val null : t
  (** Drops everything.  The default; {!enabled} is [false] under it. *)

  val memory : unit -> t
  (** A fresh in-memory registry aggregating by [(name, labels)]. *)

  val jsonl : Format.formatter -> t
  (** Streams one JSON object per event
      ([{"kind","name","labels","v","t_ns","scope"}]): the monotonic
      timestamp {!now_ns} and, when a {!Scope} is active, its epoch /
      tid / phase — so the stream replays into a timeline.  No
      aggregation: {!snapshot} is empty. *)

  val tee : t -> t -> t
  (** Events go to both; snapshots concatenate. *)

  val snapshot : t -> Snapshot.t
end

val set_sink : Sink.t -> unit
(** Install [s] globally.  Not thread-safe: install before spawning
    domains.  The instruments themselves are domain-safe under
    {!Sink.memory} and {!Sink.jsonl} (a per-registry mutex serializes
    updates), so pool workers may emit concurrently. *)

val sink : unit -> Sink.t
val enabled : unit -> bool
(** [false] iff the null sink is installed — gate expensive label or
    value computation on this. *)

val with_sink : Sink.t -> (unit -> 'a) -> 'a
(** Run with [s] installed, restoring the previous sink afterwards
    (also on exceptions). *)

val now_ns : unit -> int64
(** Monotonic clock, nanoseconds. *)

module Counter : sig
  type t

  val make : ?labels:labels -> string -> t
  val incr : t -> unit
  val add : t -> int -> unit
end

module Gauge : sig
  type t

  val make : ?labels:labels -> string -> t
  val set : t -> float -> unit

  val set_max : t -> float -> unit
  (** High-water mark: keeps the maximum of all values ever set. *)
end

module Histogram : sig
  type t

  val make : ?labels:labels -> string -> t
  val observe : t -> float -> unit
end

module Span : sig
  type t

  val make : ?labels:labels -> string -> t
  (** By convention name spans [<what>.ns]. *)

  val time : t -> (unit -> 'a) -> 'a
  (** Run the thunk, recording its wall-clock duration (ns) into the
      histogram named [name] — also when the thunk raises.  Under the
      null sink this is just the call: no clock reads. *)
end
